"""Lemma 3.6 (the Reduction Lemma): the composed hardness-transfer chain.

    p-HOM(M*)  ≤pl  p-HOM(G*)  ≤pl  p-HOM(core(A)*)  ≤pl  p-HOM(core(A))  ≤pl  p-HOM(A)

where ``A`` ranges over a class, ``G`` is the Gaifman graph of ``core(A)``
and ``M`` is a minor of ``G``.  The chain is what turns excluded-minor
characterizations (Theorem 2.3) into the hardness directions of the
Classification Theorem: if the cores have unbounded pathwidth they contain
every tree as a minor, so ``p-HOM(T*)`` reduces to ``p-HOM(A)``; if they
have unbounded tree depth they contain every path as a minor, so
``p-HOM(P*)`` does.

:class:`ReductionLemmaChain` packages the composition for a single class
member ``A`` and a chosen minor ``M`` of its core's Gaifman graph; the
tests and benchmark E4 drive instances through it and check that answers
are preserved end to end.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.exceptions import ReductionError
from repro.graphlib.graph import Graph
from repro.homomorphism.cores import core as compute_core
from repro.minors.minor_map import MinorMap
from repro.minors.search import find_minor_map
from repro.reductions.base import HomInstance, Reduction
from repro.reductions.core_star_reduction import reduce_core_star_instance
from repro.reductions.gaifman_reduction import reduce_gaifman_instance
from repro.reductions.minor_reduction import reduce_minor_instance
from repro.structures.gaifman import gaifman_graph
from repro.structures.structure import Structure

Element = Hashable


def core_to_full_structure(instance: HomInstance, full_structure: Structure) -> HomInstance:
    """The last link: ``p-HOM(core(A)) ≤pl p-HOM(A)``.

    Because ``A`` and its core are homomorphically equivalent, the instance
    ``(core(A), B)`` is equivalent to ``(A, B)`` — the reduction simply
    swaps the pattern.
    """
    return HomInstance(full_structure, instance.target)


class ReductionLemmaChain(Reduction):
    """The composed Lemma 3.6 chain for one class member and one minor.

    Parameters
    ----------
    structure:
        The class member ``A``.
    minor_pattern:
        The minor ``M`` (as a graph) whose starred homomorphism problem is
        being reduced into ``p-HOM(A)``.
    minor_map:
        Optional explicit minor map from ``M`` into the Gaifman graph of
        ``core(A)``; found by search when omitted.
    """

    statement = "Lemma 3.6"

    def __init__(
        self,
        structure: Structure,
        minor_pattern: Graph,
        minor_map: Optional[MinorMap] = None,
    ) -> None:
        self._structure = structure
        self._core = compute_core(structure)
        self._gaifman = gaifman_graph(self._core)
        self._minor_pattern = minor_pattern
        if minor_map is None:
            minor_map = find_minor_map(minor_pattern, self._gaifman)
            if minor_map is None:
                raise ReductionError(
                    "the chosen pattern is not a minor of the core's Gaifman graph"
                )
        minor_map.validate(minor_pattern, self._gaifman)
        self._minor_map = minor_map

    # -- accessors ----------------------------------------------------------------
    @property
    def core(self) -> Structure:
        """The core of the class member."""
        return self._core

    @property
    def gaifman(self) -> Graph:
        """The Gaifman graph of the core."""
        return self._gaifman

    @property
    def minor_map(self) -> MinorMap:
        """The minor map used by the first link."""
        return self._minor_map

    # -- the chain ------------------------------------------------------------------
    def apply(self, instance: HomInstance) -> HomInstance:
        """Map an instance of ``p-HOM(M*)`` to an equivalent instance of ``p-HOM(A)``."""
        step1 = reduce_minor_instance(instance, self._gaifman, self._minor_map)
        step2 = reduce_gaifman_instance(step1, self._core)
        step3 = reduce_core_star_instance(step2)
        return core_to_full_structure(step3, self._structure)

    def intermediate_instances(self, instance: HomInstance) -> dict:
        """Return every intermediate instance of the chain (for diagnostics/tests)."""
        step1 = reduce_minor_instance(instance, self._gaifman, self._minor_map)
        step2 = reduce_gaifman_instance(step1, self._core)
        step3 = reduce_core_star_instance(step2)
        step4 = core_to_full_structure(step3, self._structure)
        return {
            "minor (Lemma 3.7)": step1,
            "gaifman (Lemma 3.8)": step2,
            "core-star (Lemma 3.9)": step3,
            "class member": step4,
        }

    def parameter_bound(self, parameter: int) -> int:
        # The final pattern is the fixed class member A.
        return max(parameter, self._structure.size())
