"""Executable versions of every reduction in the paper.

* Lemma 3.4 — tree-decomposition reduction into ``p-HOM(T*)`` / ``p-HOM(P*)``.
* Lemmas 3.7 / 3.8 / 3.9 and the composed Reduction Lemma 3.6.
* Lemma 3.15 — colour coding (``p-EMB`` to ``p-HOM`` of the star expansion).
* Theorem 3.13 / 5.6 claims — connectivization of embedding instances.
* Theorem 4.3 / 5.5 hardness — machine acceptance as path / tree
  homomorphism instances.
* Theorem 4.7 — the chain through directed paths, ``p-st-PATH`` and odd
  cycles.
"""

from repro.reductions.base import EmbInstance, HomInstance, Reduction, StPathInstance
from repro.reductions.color_coding import ColorCodingReduction
from repro.reductions.connectivize import (
    AUX_RELATION,
    TreeDepthConnectivization,
    TreewidthConnectivization,
    connectivize_by_treedepth,
    connectivize_by_treewidth,
)
from repro.reductions.core_star_reduction import (
    CoreStarReduction,
    reduce_core_star_instance,
    reduce_core_star_to_embedding,
)
from repro.reductions.gaifman_reduction import GaifmanReduction, reduce_gaifman_instance
from repro.reductions.machine_to_path import (
    configuration_graph_to_hom_path,
    machine_acceptance_to_hom_path,
)
from repro.reductions.machine_to_tree import (
    configuration_graph_to_hom_tree,
    machine_acceptance_to_hom_tree,
)
from repro.reductions.minor_reduction import MinorReduction, reduce_minor_instance
from repro.reductions.path_chain import (
    directed_path_to_st_path,
    hom_pstar_to_colored_odd_cycle,
    hom_pstar_to_directed_odd_cycle,
    hom_pstar_to_directed_path,
    hom_pstar_to_st_path,
    pad_to_exact_parity,
    st_path_to_colored_odd_cycle,
    st_path_to_directed_odd_cycle,
)
from repro.reductions.reduction_lemma import ReductionLemmaChain, core_to_full_structure
from repro.reductions.tree_decomposition_reduction import (
    TreeDecompositionReduction,
    hom_count_preserved,
    reduce_with_decomposition,
    reduce_with_path_decomposition,
)

__all__ = [
    "Reduction",
    "HomInstance",
    "EmbInstance",
    "StPathInstance",
    "TreeDecompositionReduction",
    "reduce_with_decomposition",
    "reduce_with_path_decomposition",
    "hom_count_preserved",
    "MinorReduction",
    "reduce_minor_instance",
    "GaifmanReduction",
    "reduce_gaifman_instance",
    "CoreStarReduction",
    "reduce_core_star_instance",
    "reduce_core_star_to_embedding",
    "ReductionLemmaChain",
    "core_to_full_structure",
    "ColorCodingReduction",
    "TreeDepthConnectivization",
    "TreewidthConnectivization",
    "connectivize_by_treedepth",
    "connectivize_by_treewidth",
    "AUX_RELATION",
    "machine_acceptance_to_hom_path",
    "configuration_graph_to_hom_path",
    "machine_acceptance_to_hom_tree",
    "configuration_graph_to_hom_tree",
    "hom_pstar_to_directed_path",
    "directed_path_to_st_path",
    "pad_to_exact_parity",
    "st_path_to_directed_odd_cycle",
    "st_path_to_colored_odd_cycle",
    "hom_pstar_to_st_path",
    "hom_pstar_to_directed_odd_cycle",
    "hom_pstar_to_colored_odd_cycle",
]
