"""Theorem 4.3 (hardness direction): jump-machine acceptance as ``p-HOM(P*)``.

Given a jump machine ``A`` with jump budget ``f(k)`` and an input ``x``,
the reduction builds the instance ``(P*_{f(k)+1}, B_x)`` where the target
``B_x`` is derived from the machine's levelled configuration graph:

* the universe consists of the pairs (level, checkpoint index);
* two consecutive-level pairs are adjacent when the lower checkpoint
  *reaches* the upper one through one deterministic run ending in a jump;
* colour ``C_1`` pins the initial configuration, colour ``C_i`` is the
  whole level ``i``, and colour ``C_{f(k)+1}`` selects the accepting
  checkpoints of the last level.

A homomorphism from the coloured path exists exactly when the machine has
an accepting run using exactly ``f(k)`` jumps — the normal form the
example machines satisfy.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from repro.exceptions import ReductionError
from repro.machines.configuration_graph import (
    LevelledConfigurationGraph,
    build_jump_configuration_graph,
)
from repro.machines.jump import JumpMachine
from repro.reductions.base import HomInstance
from repro.structures.builders import path
from repro.structures.operations import color_symbol, star_expansion
from repro.structures.structure import Structure
from repro.structures.vocabulary import GRAPH_VOCABULARY

Element = Hashable


def machine_acceptance_to_hom_path(
    machine: JumpMachine, input_string: str, max_steps: int = 50_000
) -> HomInstance:
    """Return the ``p-HOM(P*)`` instance encoding "the machine accepts the input"."""
    graph = build_jump_configuration_graph(machine, input_string, max_steps=max_steps)
    return configuration_graph_to_hom_path(graph, machine.max_jumps)


def configuration_graph_to_hom_path(
    graph: LevelledConfigurationGraph, jumps: int
) -> HomInstance:
    """Build ``(P*_{jumps+1}, B_x)`` from a levelled configuration graph."""
    levels = jumps + 1
    pattern = star_expansion(path(levels))

    universe = []
    for level in range(levels):
        level_checkpoints = graph.levels[level] if level < len(graph.levels) else []
        for index in range(len(level_checkpoints)):
            universe.append((level + 1, index))
    # A target structure must have a non-empty universe even when the
    # machine's run dies immediately.
    if not universe:
        universe.append((0, 0))

    known = set(universe)
    edges: Set[Tuple[Element, Element]] = set()
    for level, lower, upper in graph.edges:
        left = (level + 1, lower)
        right = (level + 2, upper)
        if left in known and right in known:
            edges.add((left, right))
            edges.add((right, left))

    relations: Dict[str, Set[Tuple[Element, ...]]] = {"E": edges}
    extra_symbols: Dict[str, int] = {}
    accepting_last = {
        (levels, index) for (level, index) in graph.accepting if level == levels - 1
    }
    for position in range(1, levels + 1):
        symbol = color_symbol(position)
        extra_symbols[symbol] = 1
        if levels == 1:
            members = {(element,) for element in accepting_last}
        elif position == 1:
            members = {((1, 0),)} if (1, 0) in known else set()
        elif position == levels:
            members = {(element,) for element in accepting_last}
        else:
            members = {
                (element,) for element in universe if element[0] == position
            }
        relations[symbol] = members

    vocabulary = GRAPH_VOCABULARY.extend(extra_symbols)
    target = Structure(vocabulary, universe, relations)
    if set(extra_symbols) != {
        color_symbol(position) for position in range(1, levels + 1)
    }:
        raise ReductionError("colour symbols of the path pattern were not all produced")
    return HomInstance(pattern, target)
