"""Lemma 3.9 and Corollary 3.10: dropping the colours on a core.

Given an instance ``(D*, B)`` where ``D`` is a **core**, the reduction
outputs ``(D, B')`` where ``B'`` is the substructure of the direct product
``D × B↾τ(D)`` induced by the pairs ``(d, b)`` with ``b ∈ C_d^B``.  The
correctness argument uses that ``D`` is a core: the first projection of
any homomorphism ``D → B'`` is an endomorphism of ``D``, hence bijective,
and composing with a suitable power makes it the identity — yielding a
colour-respecting homomorphism ``D* → B``.

Corollary 3.10 observes that the homomorphism constructed in the other
direction is injective, so the very same output instance also witnesses
``p-HOM(core(A)*) ≤pl p-EMB(core(A))``.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import ReductionError
from repro.homomorphism.cores import is_core
from repro.reductions.base import EmbInstance, HomInstance, Reduction
from repro.structures.operations import color_symbol, direct_product, strip_star_expansion
from repro.structures.structure import Structure

Element = Hashable


class CoreStarReduction(Reduction):
    """The Lemma 3.9 reduction ``p-HOM(core(A)*) ≤pl p-HOM(core(A))``."""

    statement = "Lemma 3.9"

    def __init__(self, check_core: bool = True) -> None:
        self._check_core = check_core

    def apply(self, instance: HomInstance) -> HomInstance:
        return reduce_core_star_instance(instance, check_core=self._check_core)

    def parameter_bound(self, parameter: int) -> int:
        # The output pattern is the de-starred pattern, which is smaller.
        return parameter


def reduce_core_star_instance(instance: HomInstance, check_core: bool = True) -> HomInstance:
    """Apply Lemma 3.9: pattern must be ``D*`` for a core ``D``."""
    pattern_star = instance.pattern
    target = instance.target
    pattern = strip_star_expansion(pattern_star)
    if check_core and not is_core(pattern):
        raise ReductionError("Lemma 3.9 requires the de-starred pattern to be a core")

    # Restrict the target to the pattern's vocabulary (B* in the paper's notation).
    shared_names = [name for name in pattern.vocabulary.names() if name in target.vocabulary]
    if set(shared_names) != set(pattern.vocabulary.names()):
        raise ReductionError("target does not interpret the pattern's vocabulary")
    target_restricted = target.restrict_vocabulary(shared_names)

    product = direct_product(pattern, target_restricted)
    allowed = {
        (d, b)
        for d in pattern.universe
        for (b,) in target.relation(color_symbol(d))
    }
    if not allowed:
        # Every colour class of the target is empty, so the original instance
        # is a "no".  Structures need a non-empty universe, so we encode the
        # "no" with a tuple-free single-element target — which only works
        # when the pattern has at least one tuple to fail on.  A relation-free
        # single-element core with an empty colour class is a degenerate
        # corner the paper's construction cannot express either.
        if pattern.total_tuples() == 0:
            raise ReductionError(
                "degenerate instance: relation-free pattern with empty colour classes"
            )
        dummy = Structure(pattern.vocabulary, ["__empty__"], {})
        return HomInstance(pattern, dummy)
    induced = product.induced_substructure(allowed)
    return HomInstance(pattern, induced)


def reduce_core_star_to_embedding(instance: HomInstance, check_core: bool = True) -> EmbInstance:
    """Corollary 3.10: the same construction viewed as an embedding instance."""
    reduced = reduce_core_star_instance(instance, check_core=check_core)
    return EmbInstance(reduced.pattern, reduced.target)
