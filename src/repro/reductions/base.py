"""Common infrastructure for the paper's reductions.

Every reduction in the paper is a *pl-reduction*: an instance-to-instance
map that preserves yes/no answers and whose output parameter is bounded by
a computable function of the input parameter.  Space usage cannot be
meaningfully measured on CPython, but both remaining properties can, so
each reduction here is an object exposing

* :meth:`Reduction.apply` — map an instance to an instance, and
* :meth:`Reduction.parameter_bound` — the function ``f`` with
  ``κ'(R(x)) ≤ f(κ(x))``,

and the test-suite checks both answer preservation (against the brute-force
solver) and the parameter bound on generated instance families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Mapping, Optional, TypeVar

from repro.structures.structure import Structure

Element = Hashable


@dataclass(frozen=True)
class HomInstance:
    """An instance of ``p-HOM``: a pattern (left) and a target (right) structure.

    The parameter is ``pattern.size()`` (the paper's ``|A|``).
    """

    pattern: Structure
    target: Structure

    def parameter(self) -> int:
        """Return the instance's parameter ``|A|``."""
        return self.pattern.size()


@dataclass(frozen=True)
class EmbInstance:
    """An instance of ``p-EMB``: pattern, target, parameter ``|A|``."""

    pattern: Structure
    target: Structure

    def parameter(self) -> int:
        """Return the instance's parameter ``|A|``."""
        return self.pattern.size()


@dataclass(frozen=True)
class StPathInstance:
    """An instance of ``p-st-PATH``: graph, two endpoints, length bound ``k``.

    The question is whether the graph contains a (simple) path from ``s``
    to ``t`` with at most ``k`` edges; the parameter is ``k``.
    """

    graph: "object"  # repro.graphlib.Graph; typed loosely to avoid an import cycle
    source: Element
    sink: Element
    length_bound: int

    def parameter(self) -> int:
        """Return the instance's parameter ``k``."""
        return self.length_bound


class Reduction:
    """Base class for executable reductions.

    Subclasses implement :meth:`apply` and :meth:`parameter_bound`; the
    latter documents (and lets tests verify) the ``κ' ∘ R ≤ f ∘ κ``
    condition of a pl-reduction.
    """

    #: Human-readable reference to the statement being implemented.
    statement: str = ""

    def apply(self, instance):  # pragma: no cover - abstract
        """Map an input instance to an output instance."""
        raise NotImplementedError

    def parameter_bound(self, parameter: int) -> int:  # pragma: no cover - abstract
        """Return an upper bound on the output parameter for inputs of this parameter."""
        raise NotImplementedError

    def preserves_answer(self, instance, solver_in, solver_out) -> bool:
        """Check answer preservation on one instance using the given solvers.

        ``solver_in`` and ``solver_out`` map instances to booleans; the
        method returns True when they agree across the reduction.  Used by
        the tests and the E3/E4 benchmarks.
        """
        return bool(solver_in(instance)) == bool(solver_out(self.apply(instance)))
