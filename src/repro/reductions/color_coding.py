"""Lemma 3.15: colour-coding reduction ``p-EMB(A) ≤pl p-HOM(A*)`` for connected ``A``.

The paper maps an embedding instance ``(A, B)`` to ``(A*, B*)`` where
``B*`` is the disjoint union, over a family ``F`` of "colouring" functions
``f = g ∘ h_{p,q} : B → A``, of the expansions ``B_f`` of ``B`` that
interpret the colour ``C_a`` by ``f⁻¹(a)``.  Soundness: in any block the
colour classes are disjoint, so a homomorphism from ``A*`` is injective,
and connectivity of ``A`` keeps it inside one block.  Completeness: for an
embedding ``e`` Lemma 3.14 supplies ``(p, q)`` with ``h_{p,q}`` injective
on the image, and a suitable ``g`` turns ``h_{p,q}`` into a colouring for
which ``e`` respects colours.

The full family ``F`` has ``|A|^{k²}·|{(p,q)}|`` members — far too many to
materialise even for toy instances — so the class below exposes three
faithful views of the same reduction:

* :meth:`ColorCodingReduction.blocks` — a lazy iterator over the blocks
  ``B_f`` (the disjoint union is their union; homomorphism existence into
  the union is existence into some block);
* :meth:`ColorCodingReduction.witness_block` — the *specific* block
  guaranteed by Lemma 3.14 for a given embedding (used to verify
  completeness without enumerating ``F``);
* :meth:`ColorCodingReduction.materialize` — the honest disjoint union,
  restricted to a caller-supplied cap on the number of blocks (enough for
  the very small instances the unit tests use).
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, Hashable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import ReductionError
from repro.machines.hashing import family_parameters, find_injective_pair, hash_value
from repro.reductions.base import EmbInstance, HomInstance, Reduction
from repro.structures.gaifman import is_connected_structure
from repro.structures.operations import color_symbol, disjoint_union, star_expansion
from repro.structures.structure import Structure

Element = Hashable


class ColorCodingReduction(Reduction):
    """The Lemma 3.15 reduction, with lazy block enumeration."""

    statement = "Lemma 3.15"

    def __init__(self, max_blocks: Optional[int] = 2000) -> None:
        self._max_blocks = max_blocks

    def apply(self, instance: EmbInstance) -> HomInstance:
        return self.materialize(instance, self._max_blocks)

    def parameter_bound(self, parameter: int) -> int:
        # The output pattern is A*, whose size is at most |A| + |A| extra
        # unary relations with one tuple each.
        return 3 * parameter

    # -- block construction -----------------------------------------------------
    @staticmethod
    def _element_index(target: Structure) -> Dict[Element, int]:
        """Number the target's elements 1..|B| (the paper assumes B = [|B|])."""
        return {b: i + 1 for i, b in enumerate(sorted(target.universe, key=repr))}

    @staticmethod
    def build_block(
        pattern: Structure, target: Structure, coloring: Mapping[Element, Element]
    ) -> Structure:
        """Return ``B_f`` for an explicit colouring ``f : B → A``."""
        extra_symbols = {color_symbol(a): 1 for a in pattern.universe}
        extra_relations = {
            color_symbol(a): {(b,) for b in target.universe if coloring.get(b) == a}
            for a in pattern.universe
        }
        return target.expand(extra_symbols, extra_relations)

    def blocks(
        self, instance: EmbInstance
    ) -> Iterator[Tuple[Tuple[int, int, Tuple[Element, ...]], Structure]]:
        """Yield ``((p, q, g), B_f)`` over the paper's family ``F``.

        ``g`` is represented by the tuple of its values on ``0..k²-1``.
        The iterator is lazy; callers decide how much of it to consume.
        """
        pattern, target = instance.pattern, instance.target
        k = len(pattern)
        index = self._element_index(target)
        n = max(2, len(target))
        pattern_elements = sorted(pattern.universe, key=repr)
        for p, q in family_parameters(k, n):
            hashed = {b: hash_value(p, q, k, index[b]) for b in target.universe}
            attained = sorted(set(hashed.values()))
            for g_values in product(pattern_elements, repeat=len(attained)):
                g = dict(zip(attained, g_values))
                coloring = {b: g[hashed[b]] for b in target.universe}
                yield (p, q, tuple(g_values)), self.build_block(pattern, target, coloring)

    def witness_block(
        self, instance: EmbInstance, embedding: Mapping[Element, Element]
    ) -> Structure:
        """Return the block of ``F`` that accepts the given embedding.

        This is the constructive half of the completeness argument: pick
        ``(p, q)`` injective on the embedding's image (Lemma 3.14) and the
        ``g`` that undoes the hashing on that image.
        """
        pattern, target = instance.pattern, instance.target
        k = len(pattern)
        index = self._element_index(target)
        n = max(2, len(target))
        image_positions = [index[embedding[a]] for a in pattern.universe]
        pair = find_injective_pair(image_positions, n)
        if pair is None:
            raise ReductionError(
                "Lemma 3.14 bound produced no injective hash pair (input too small)"
            )
        p, q = pair
        default = sorted(pattern.universe, key=repr)[0]
        g: Dict[int, Element] = {}
        for a in pattern.universe:
            g[hash_value(p, q, k, index[embedding[a]])] = a
        coloring = {
            b: g.get(hash_value(p, q, k, index[b]), default) for b in target.universe
        }
        return self.build_block(pattern, target, coloring)

    def materialize(self, instance: EmbInstance, max_blocks: Optional[int]) -> HomInstance:
        """Return the honest ``(A*, B*)`` instance, capping the number of blocks.

        With ``max_blocks=None`` the full family is materialised — only do
        this for tiny instances.  When the cap truncates the family the
        result is still *sound* (any homomorphism yields an embedding) but
        may lose completeness; the tests use :meth:`witness_block` for the
        completeness direction instead.
        """
        if not is_connected_structure(instance.pattern):
            raise ReductionError("Lemma 3.15 requires a connected pattern")
        blocks: List[Structure] = []
        for _, block in self.blocks(instance):
            blocks.append(block)
            if max_blocks is not None and len(blocks) >= max_blocks:
                break
        if not blocks:
            raise ReductionError("no colouring blocks were generated")
        return HomInstance(star_expansion(instance.pattern), disjoint_union(blocks))

    # -- end-to-end check ----------------------------------------------------------
    def agrees_with_bruteforce(self, instance: EmbInstance) -> bool:
        """Check the reduction's correctness on one (small) instance.

        Soundness is checked on a bounded prefix of the family; completeness
        through :meth:`witness_block`.
        """
        from repro.homomorphism.backtracking import (
            find_embedding,
            has_homomorphism,
        )

        pattern = instance.pattern
        pattern_star = star_expansion(pattern)
        embedding = find_embedding(pattern, instance.target)
        if embedding is not None:
            block = self.witness_block(instance, embedding)
            return has_homomorphism(pattern_star, block)
        for count, (_, block) in enumerate(self.blocks(instance)):
            if has_homomorphism(pattern_star, block):
                return False
            if count >= 200:
                break
        return True
