"""repro — a reproduction of Chen & Müller (PODS 2013).

"The Fine Classification of Conjunctive Queries and Parameterized
Logarithmic Space Complexity" classifies classes of boolean conjunctive
queries (equivalently, of relational structures) by the parameterized
complexity of the homomorphism problem, identifying three degrees inside
FPT — para-L, PATH-complete and TREE-complete — governed by the tree
depth, pathwidth and treewidth of the query cores.

This package implements every object and algorithm the paper relies on:

* :mod:`repro.structures` — relational structures, named families, star
  expansions, Gaifman graphs, products, per-relation hash indexes;
* :mod:`repro.graphlib`, :mod:`repro.decomposition`, :mod:`repro.minors` —
  graphs, tree/path decompositions, tree depth, minor maps;
* :mod:`repro.homomorphism` — homomorphism/embedding solvers (backtracking,
  the semiring join engine, decomposition DP, tree-depth recursion), cores;
* :mod:`repro.logic` — first-order formulas, Chandra–Merlin translations,
  the space-accounted model checker, tree-depth sentences;
* :mod:`repro.machines` — Turing machines, jump machines, alternating jump
  machines, configuration graphs, the colour-coding hash family;
* :mod:`repro.reductions` — every reduction in the paper, executable;
* :mod:`repro.classification` — the three-degree classifier and the
  degree-aware solver dispatcher (the paper's main theorem as an API);
* :mod:`repro.counting` — the counting classification of Section 6;
* :mod:`repro.cq` — conjunctive queries, databases, EVAL(Φ);
* :mod:`repro.eval` — the EVAL(Φ) execution service: database statistics,
  cost-based planning, and the chunked multi-process executor;
* :mod:`repro.problems`, :mod:`repro.workloads` — concrete parameterized
  problems and benchmark workloads.

Quickstart::

    from repro.cq import parse_query, Database
    from repro.classification import classify_structure, solve_hom

    query = parse_query("E(x, y), E(y, z), E(z, x)")       # a triangle query
    profile = query.classify()                               # core widths
    database = Database({"E": [(1, 2), (2, 3), (3, 1)]})
    print(query.holds_on(database))                          # True

The decomposition-based solvers run on the **semiring join engine**
(:mod:`repro.homomorphism.join_engine`): bag tables are built by indexed
candidate lookups instead of the ``|B|^|bag|`` product, joined bottom-up
with an iterative worklist, and parameterized by a semiring so Boolean
existence and Section-6 counting share one sweep::

    from repro.homomorphism import (
        BOOLEAN, COUNTING, run_decomposition_dp,
        count_homomorphisms_join, homomorphism_exists_join,
    )

    homomorphism_exists_join(pattern, database_structure)   # existence
    count_homomorphisms_join(pattern, database_structure)   # exact count

Whole query workloads go through the batched evaluator, which caches
classification profiles and database→structure conversions across the
queries of the batch, and optionally fans the batch out to a process
pool with cost-based planning (:mod:`repro.eval`)::

    from repro.cq import evaluate_query_set

    for query, result in evaluate_query_set(queries, database, workers=4):
        print(query, result.answer, result.solver)
"""

from repro.classification import (
    ClassificationReport,
    ComplexityDegree,
    SolveResult,
    classify_family,
    classify_structure,
    classify_with_bounds,
    solve_hom,
)
from repro.counting import CountResult, count_hom
from repro.cq import ConjunctiveQuery, Database, evaluate_query_set, parse_query
from repro.eval import (
    DatabaseStatistics,
    EvalService,
    ExecutorConfig,
    PlannerConfig,
    QueryPlan,
)
from repro.service import QueryService
from repro.homomorphism import (
    BOOLEAN,
    COUNTING,
    Semiring,
    core,
    count_homomorphisms,
    count_homomorphisms_join,
    has_embedding,
    has_homomorphism,
    homomorphism_exists_join,
    is_core,
)
from repro.structures import Structure, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Structure",
    "Vocabulary",
    "ConjunctiveQuery",
    "Database",
    "parse_query",
    "has_homomorphism",
    "has_embedding",
    "count_homomorphisms",
    "core",
    "is_core",
    "ComplexityDegree",
    "ClassificationReport",
    "classify_structure",
    "classify_family",
    "classify_with_bounds",
    "solve_hom",
    "SolveResult",
    "count_hom",
    "CountResult",
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "homomorphism_exists_join",
    "count_homomorphisms_join",
    "evaluate_query_set",
    "EvalService",
    "ExecutorConfig",
    "PlannerConfig",
    "QueryPlan",
    "DatabaseStatistics",
    "QueryService",
]
