"""Differential fuzzing harness for EVAL(Φ) and the solver stack.

Four properties are fuzzed:

* **parser round-trip** — random conjunctive-query text (random atoms,
  separators, quantifier-prefix spellings, whitespace) must survive
  ``parse → str → parse`` with atoms and variables intact, and printing
  must be a fixed point from then on.
* **three-way evaluation agreement** — on ≥100 random query/database
  pairs drawn from the scenario generators, the parallel executor, the
  sequential reference evaluator and the direct backtracking solver must
  agree; parallel and sequential must agree byte-for-byte on
  ``(query, answer, solver)``.
* **nullary/empty-relation solver agreement** — on random structure
  pairs over vocabularies containing arity-0 symbols and empty
  relations, the backtracking solver, the join engine and the
  tree-depth recursion must return the same answer (the campaign that
  originally caught the backtracking solver skipping nullary atoms).
* **core-engine equivalence** — on ≥100 random structures, the rigidity-
  certified engine's core must be isomorphic to the seed algorithm's.

The seed is fixed (override with ``REPRO_FUZZ_SEED``) so CI failures are
reproducible by rerunning with the printed seed.
"""

import os
import random

import pytest

from repro.cq import evaluate_query_set_sequential, parse_query
from repro.eval import EvalService, ExecutorConfig
from repro.exceptions import FormulaError
from repro.homomorphism import (
    core,
    has_homomorphism,
    homomorphism_exists_join,
    homomorphism_exists_treedepth,
    legacy_core,
    nullary_obstruction,
)
from repro.structures import Structure, Vocabulary, are_isomorphic
from repro.structures.builders import graph_structure
from repro.structures.random_gen import (
    random_graph_structure,
    random_structure,
    random_tree_graph,
)
from repro.workloads import (
    MIXED_TABLES,
    dense_graph_database,
    expander_database,
    grid_database,
    mixed_vocabulary_database,
    skewed_database,
)

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20130625"))

ATOM_SEPARATORS = [", ", " , ", " & ", " ∧ ", ",", " &  "]
PREFIX_STYLES = [
    "exists {names} . ",
    "exists {names}: ",
    "∃{names} . ",
    "∃ {names} : ",
]


def random_query_text(rng: random.Random, tables=None, max_atoms=3, max_variables=4):
    """Random parseable query text plus the atoms it should parse to."""
    tables = dict(tables or {"E": 2})
    names = [f"v{i}" for i in range(rng.randint(1, max_variables))]
    atoms = []
    for _ in range(rng.randint(1, max_atoms)):
        table = rng.choice(sorted(tables))
        arity = max(1, tables[table])
        atoms.append((table, tuple(rng.choice(names) for _ in range(arity))))
    fragments = [
        f"{table}({rng.choice(['', ' '])}{', '.join(arguments)})"
        for table, arguments in atoms
    ]
    text = rng.choice(ATOM_SEPARATORS).join(fragments)
    if rng.random() < 0.4:
        # An explicit quantifier prefix, sometimes with an isolated
        # variable that occurs in no atom.
        listed = list(names)
        if rng.random() < 0.5:
            listed.append(f"w{rng.randint(0, 3)}")
        style = rng.choice(PREFIX_STYLES)
        text = style.format(names=rng.choice([" ", ", "]).join(listed)) + text
    return text, atoms


class TestParserRoundTrip:
    def test_parse_str_parse_is_identity_on_random_queries(self):
        rng = random.Random(FUZZ_SEED)
        for trial in range(150):
            text, atoms = random_query_text(rng, MIXED_TABLES)
            query = parse_query(text)
            assert [(a.relation, a.variables) for a in query.atoms] == atoms, (
                f"seed={FUZZ_SEED} trial={trial} text={text!r}"
            )
            reparsed = parse_query(str(query))
            assert reparsed.atoms == query.atoms, f"seed={FUZZ_SEED} text={text!r}"
            assert reparsed.variables == query.variables, (
                f"seed={FUZZ_SEED} text={text!r}"
            )
            # Printing is a fixed point after one round trip.
            assert str(reparsed) == str(query)

    def test_malformed_fragments_still_rejected(self):
        rng = random.Random(FUZZ_SEED)
        for text in ("E(x,)", "E(x y)", "E(x) garbage", "", "exists . ", "E()"):
            with pytest.raises(FormulaError):
                parse_query(text)
        # Fuzzed junk appended to a valid query must not parse silently.
        for _ in range(25):
            text, _ = random_query_text(rng)
            with pytest.raises(FormulaError):
                parse_query(text + " unparsed!junk(")


def fuzz_databases(seed):
    """Six databases of different character, with the schema their queries use."""
    return [
        (dense_graph_database(10, 0.45, seed=seed), {"E": 2}),
        (dense_graph_database(14, 0.15, seed=seed + 1), {"E": 2}),
        (grid_database(4, 5), {"E": 2}),
        (expander_database(13, (1, 5)), {"E": 2}),
        (skewed_database(16, rows_per_table=50, skew=1.8, seed=seed + 2), {"E": 2, "C1": 1}),
        (mixed_vocabulary_database(12, rows_per_table=30, seed=seed + 3), MIXED_TABLES),
    ]


class TestDifferentialEvaluation:
    def test_parallel_sequential_and_backtracking_agree(self):
        rng = random.Random(FUZZ_SEED)
        pairs = 0
        config = ExecutorConfig(workers=2, chunk_size=4, min_parallel_batch=1, adaptive=False)
        for database, tables in fuzz_databases(FUZZ_SEED):
            queries = []
            while len(queries) < 20:
                text, _ = random_query_text(rng, tables)
                queries.append(parse_query(text))
            sequential = evaluate_query_set_sequential(queries, database)
            with EvalService(database, executor=config) as service:
                parallel = service.evaluate(queries)
            for (q_seq, r_seq), (q_par, r_par) in zip(sequential, parallel):
                assert q_seq is q_par
                context = f"seed={FUZZ_SEED} query={q_seq} database={database}"
                # Byte-identical provenance between the two service paths.
                assert (r_seq.answer, r_seq.solver, r_seq.degree) == (
                    r_par.answer,
                    r_par.solver,
                    r_par.degree,
                ), context
                # Ground truth: the plain backtracking solver.
                target = database.to_structure(q_seq.vocabulary())
                truth = has_homomorphism(q_seq.canonical_structure(), target)
                assert r_seq.answer == truth, context
                pairs += 1
        assert pairs >= 100


def random_nullary_structure(rng: random.Random, vocabulary: Vocabulary) -> Structure:
    """A random structure where any relation — nullary included — may be empty."""
    universe = list(range(rng.randint(2, 5)))
    relations = {}
    for symbol in vocabulary:
        if symbol.arity == 0:
            relations[symbol.name] = [()] if rng.random() < 0.5 else []
        else:
            rows = rng.randint(0, 2 * len(universe))  # 0 → empty relation
            relations[symbol.name] = {
                tuple(rng.choice(universe) for _ in range(symbol.arity))
                for _ in range(rows)
            }
    return Structure(vocabulary, universe, relations)


class TestNullaryDifferentialFuzz:
    """Solver agreement on vocabularies with arity-0 and empty relations."""

    def test_backtracking_join_and_treedepth_agree(self):
        rng = random.Random(FUZZ_SEED)
        obstructed = 0
        for trial in range(120):
            tables = {"E": 2, "U": 1, "Z": 0, "W": 0}
            if rng.random() < 0.4:
                tables["R"] = 3
            vocabulary = Vocabulary(tables)
            source = random_nullary_structure(rng, vocabulary)
            target = random_nullary_structure(rng, vocabulary)
            context = f"seed={FUZZ_SEED} trial={trial} source={source} target={target}"
            truth = has_homomorphism(source, target)
            assert homomorphism_exists_join(source, target) == truth, context
            assert homomorphism_exists_treedepth(source, target) == truth, context
            if nullary_obstruction(source, target):
                obstructed += 1
                assert not truth, context
        # The generator must actually exercise the obstruction path.
        assert obstructed >= 10


class TestCoreEngineEquivalenceFuzz:
    """Engine cores are isomorphic to seed-algorithm cores."""

    def test_engine_core_isomorphic_to_legacy_core(self):
        rng = random.Random(FUZZ_SEED)
        checked = 0
        while checked < 104:
            kind = checked % 4
            seed = rng.randrange(10**6)
            if kind == 0:
                structure = random_graph_structure(
                    rng.randint(3, 8), rng.uniform(0.1, 0.6), seed=seed
                )
            elif kind == 1:
                structure = graph_structure(
                    random_tree_graph(rng.randint(2, 10), seed=seed)
                )
            elif kind == 2:
                vocabulary = Vocabulary({"E": 2, "U": 1})
                structure = random_structure(
                    vocabulary, rng.randint(2, 6), rng.randint(1, 10), seed=seed
                )
            else:
                vocabulary = Vocabulary({"E": 2, "Z": 0})
                structure = random_nullary_structure(rng, vocabulary)
            engine_core = core(structure)
            seed_core = legacy_core(structure)
            assert are_isomorphic(engine_core, seed_core), (
                f"seed={FUZZ_SEED} trial={checked} structure={structure} "
                f"engine={engine_core} legacy={seed_core}"
            )
            checked += 1
        assert checked >= 100
