"""Tests for the rigidity-certified core engine.

The engine must (a) compute cores isomorphic to the seed algorithm's,
(b) certify the canonical rigid families without searching, (c) collapse
foldable families without searching, and (d) produce retraction
witnesses that really are homomorphisms onto the core.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.homomorphism import (
    CoreComputation,
    compute_core,
    core,
    core_with_witness,
    endomorphism_domains,
    find_fold,
    find_non_surjective_endomorphism,
    find_proper_retraction,
    fold_reduce,
    is_core,
    is_homomorphism,
    legacy_core,
    legacy_find_proper_retraction,
    legacy_is_core,
    rigidity_certificate,
)
from repro.structures import (
    Structure,
    Vocabulary,
    are_isomorphic,
    clique,
    cycle,
    grid,
    path,
    star,
    star_expansion,
)
from repro.structures.builders import directed_cycle, directed_path
from repro.structures.random_gen import random_graph_structure, random_structure


class TestFolds:
    def test_path_endpoint_folds(self):
        fold = find_fold(path(5))
        assert fold is not None
        a, b = fold
        mapping = {x: (b if x == a else x) for x in path(5).universe}
        assert is_homomorphism(mapping, path(5), path(5))

    def test_fold_reduce_collapses_tree_to_edge(self):
        folded, retraction, count = fold_reduce(path(7))
        assert len(folded) == 2
        assert count == 5
        assert set(retraction) == set(path(7).universe)
        assert set(retraction.values()) == set(folded.universe)
        assert is_homomorphism(retraction, path(7), path(7))

    def test_grid_folds_to_edge_without_search(self):
        computation = compute_core(grid(3, 4))
        assert len(computation.core) == 2
        assert computation.searches == 0
        assert computation.folds == 10

    def test_odd_cycle_has_no_fold(self):
        assert find_fold(cycle(5)) is None

    def test_directed_path_has_no_fold(self):
        assert find_fold(directed_path(6)) is None

    def test_isolated_element_folds_away(self):
        structure = Structure(
            Vocabulary({"E": 2}), [1, 2, 3], {"E": [(1, 2), (2, 1)]}
        )
        fold = find_fold(structure)
        assert fold is not None and fold[0] == 3


class TestRigidityCertificates:
    @pytest.mark.parametrize(
        "structure, expected",
        [
            (clique(4), "clique"),
            (clique(2), "clique"),
            (cycle(13), "odd-cycle"),
            (cycle(7), "odd-cycle"),
            (directed_path(30), "ac-rigid"),
            (star_expansion(path(4)), "ac-rigid"),
        ],
    )
    def test_certified_families(self, structure, expected):
        assert rigidity_certificate(structure) == expected

    def test_certified_structures_really_are_cores(self):
        for structure in (clique(4), cycle(9), directed_path(12)):
            assert rigidity_certificate(structure) is not None
            assert legacy_is_core(structure)

    @pytest.mark.parametrize(
        "structure",
        [cycle(6), path(5), grid(2, 3), directed_cycle(6)],
    )
    def test_no_certificate_for_non_cores_and_directed_cycles(self, structure):
        # Soundness: nothing that is not (provably) a core gets a tag.
        # Directed cycles ARE cores but fall outside every certificate —
        # the single search must prove them.
        assert rigidity_certificate(structure) is None

    def test_ac_domains_contain_identity(self):
        structure = cycle(6)
        domains = endomorphism_domains(structure)
        assert all(a in domains[a] for a in structure.universe)


class TestNonSurjectiveSearch:
    def test_even_cycle_yields_proper_endomorphism(self):
        structure = cycle(6)
        endomorphism = find_non_surjective_endomorphism(structure)
        assert endomorphism is not None
        assert set(endomorphism.values()) < set(structure.universe)
        assert is_homomorphism(endomorphism, structure, structure)

    @pytest.mark.parametrize("structure", [cycle(5), clique(4), directed_cycle(7)])
    def test_rigid_structures_yield_none(self, structure):
        assert find_non_surjective_endomorphism(structure) is None

    def test_agrees_with_legacy_retraction_existence(self):
        for seed in range(8):
            structure = random_graph_structure(6, 0.35, seed=seed)
            engine = find_non_surjective_endomorphism(structure)
            legacy = legacy_find_proper_retraction(structure)
            assert (engine is None) == (legacy is None), f"seed={seed}"
            if engine is not None:
                assert is_homomorphism(engine, structure, structure)


class TestComputeCore:
    @pytest.mark.parametrize(
        "structure",
        [
            path(6),
            cycle(6),
            cycle(9),
            grid(2, 4),
            clique(4),
            directed_path(9),
            directed_cycle(6),
            star(4),
        ],
    )
    def test_matches_legacy_core_up_to_isomorphism(self, structure):
        assert are_isomorphic(core(structure), legacy_core(structure))

    def test_retraction_witness_is_homomorphism_onto_core(self):
        for structure in (cycle(6), grid(2, 3), path(7)):
            computation = compute_core(structure)
            assert isinstance(computation, CoreComputation)
            assert set(computation.retraction) == set(structure.universe)
            assert set(computation.retraction.values()) == set(
                computation.core.universe
            )
            assert is_homomorphism(computation.retraction, structure, structure)

    def test_core_is_induced_substructure(self):
        structure = cycle(6)
        computation = compute_core(structure)
        assert computation.core.universe <= structure.universe
        assert computation.core == structure.induced_substructure(
            computation.core.universe
        )

    def test_nullary_relations_reach_the_core(self):
        vocabulary = Vocabulary({"E": 2, "Z": 0})
        structure = Structure(
            vocabulary, [1, 2, 3], {"E": [(1, 2), (2, 1), (2, 3), (3, 2)], "Z": [()]}
        )
        computation = compute_core(structure)
        assert computation.core.relation("Z") == frozenset({()})
        assert len(computation.core) == 2

    def test_certificate_reported_when_no_search_ran(self):
        computation = compute_core(directed_path(15))
        assert computation.certificate == "ac-rigid"
        assert not computation.searched
        computation = compute_core(directed_cycle(5))
        assert computation.certificate is None
        assert computation.searched

    def test_single_element_structure(self):
        structure = Structure(Vocabulary({"E": 2}), [1], {"E": [(1, 1)]})
        computation = compute_core(structure)
        assert computation.core == structure
        assert computation.certificate == "singleton"

    def test_loop_collapses_everything(self):
        structure = Structure(
            Vocabulary({"E": 2}), [1, 2, 3], {"E": [(1, 1), (1, 2), (2, 3)]}
        )
        assert len(core(structure)) == 1


class TestEngineBackedPublicApi:
    def test_find_proper_retraction_none_on_cores(self):
        for structure in (cycle(5), clique(4), directed_path(8)):
            assert find_proper_retraction(structure) is None

    def test_find_proper_retraction_valid_on_non_cores(self):
        for structure in (path(5), cycle(6), grid(2, 3)):
            retraction = find_proper_retraction(structure)
            assert retraction is not None
            assert set(retraction.values()) < set(structure.universe)
            assert is_homomorphism(retraction, structure, structure)

    def test_is_core_agrees_with_legacy_on_random_structures(self):
        vocabulary = Vocabulary({"E": 2, "U": 1})
        for seed in range(10):
            structure = random_structure(vocabulary, 5, 6, seed=seed)
            assert is_core(structure) == legacy_is_core(structure), f"seed={seed}"

    def test_core_with_witness_composition(self):
        structure = grid(2, 3)
        core_structure, witness = core_with_witness(structure)
        assert set(witness) == set(structure.universe)
        assert set(witness.values()) == set(core_structure.universe)
        assert is_homomorphism(witness, structure, core_structure)

    def test_classifier_records_certificate(self):
        from repro.classification import classify_structure

        profile = classify_structure(cycle(7))
        assert profile.core_certificate == "odd-cycle"
        profile = classify_structure(cycle(6))
        assert profile.core_certificate == "clique"  # the folded 2-element core


class TestFoldBatching:
    """fold_reduce applies independent fold *sets* per pass, cutting the
    structure/index rebuilds from one per fold to one per pass."""

    def test_batch_folds_compose_to_an_endomorphism(self):
        from repro.homomorphism import find_fold_batch

        for structure in (path(9), grid(3, 4), star(5)):
            batch = find_fold_batch(structure)
            assert batch, structure
            mapping = dict(batch)
            combined = {
                x: mapping.get(x, x) for x in structure.universe
            }
            assert is_homomorphism(combined, structure, structure)
            # Targets survive the batch: nothing maps to a removed element.
            assert not (set(combined.values()) & set(mapping))

    def test_first_batched_fold_matches_find_fold(self):
        from repro.homomorphism import find_fold_batch

        for structure in (path(7), grid(2, 4)):
            assert find_fold_batch(structure)[0] == find_fold(structure)

    def test_batch_empty_exactly_when_no_fold_exists(self):
        from repro.homomorphism import find_fold_batch

        for structure in (cycle(5), directed_path(6), clique(4)):
            assert find_fold_batch(structure) == []

    def test_fold_reduce_unchanged_semantics_on_random_graphs(self):
        for seed in range(12):
            structure = random_graph_structure(7, 0.3, seed=seed)
            folded, retraction, count = fold_reduce(structure)
            assert count == len(structure) - len(folded)
            assert set(retraction) == set(structure.universe)
            assert set(retraction.values()) == set(folded.universe)
            assert is_homomorphism(retraction, structure, structure)
            assert find_fold(folded) is None  # really a fold fixpoint

    def test_rebuilds_are_per_pass_not_per_fold(self, monkeypatch):
        import repro.homomorphism.core_engine as engine

        built = []
        original = engine.StructureIndex

        class CountingIndex(original):
            def __init__(self, structure, *args, **kwargs):
                built.append(len(structure))
                super().__init__(structure, *args, **kwargs)

        monkeypatch.setattr(engine, "StructureIndex", CountingIndex)
        structure = path(13)  # 13 elements fold to 2: 11 folds
        folded, _, count = engine.fold_reduce(structure)
        assert count == 11 and len(folded) == 2
        # The per-fold loop rebuilt once per fold (≥ 12 indexes); batching
        # needs one per pass plus the initial build — far fewer.
        assert len(built) <= 7, built


class TestHashSeedDeterminism:
    """The AC / core pipeline must not leak hash order into its output.

    Regression for the unsorted-set-iteration sites in
    ``endomorphism_domains`` and the join engine: the fixpoint result was
    masked by uniqueness, but the traversal order (and any future
    tie-break decision layered on it) varied with ``PYTHONHASHSEED``.
    Run the same projection under two seeds and demand byte equality.
    """

    _SCRIPT = textwrap.dedent(
        """
        import json, sys
        from repro.homomorphism import compute_core, endomorphism_domains
        from repro.structures import Structure, Vocabulary

        vocabulary = Vocabulary({"e": 2, "t": 3})
        structure = Structure(
            vocabulary,
            universe=["a", "b", "c", "d", "e5"],
            relations={
                "e": [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e5")],
                "t": [("a", "b", "c"), ("b", "c", "d")],
            },
        )
        domains = endomorphism_domains(structure)
        projection = {
            repr(elem): sorted(repr(x) for x in dom)
            for elem, dom in domains.items()
        }
        result = compute_core(structure)
        payload = {
            "domains": sorted(projection.items()),
            "core_size": len(result.core),
            "core_universe": sorted(repr(x) for x in result.core.universe),
        }
        sys.stdout.write(json.dumps(payload, sort_keys=True))
        """
    )

    def test_projection_identical_across_hash_seeds(self, tmp_path):
        script = tmp_path / "probe.py"
        script.write_text(self._SCRIPT)
        outputs = []
        for seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
            proc = subprocess.run(
                [sys.executable, str(script)],
                env=env, capture_output=True, text=True, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
