"""Tests for Lemma 3.4 (tree/path-decomposition reductions) and Remark 3.5."""

import pytest

from repro.decomposition import (
    decomposition_of_forest,
    optimal_path_decomposition,
    optimal_tree_decomposition,
)
from repro.homomorphism import count_homomorphisms, has_homomorphism
from repro.reductions import (
    HomInstance,
    TreeDecompositionReduction,
    hom_count_preserved,
    reduce_with_decomposition,
    reduce_with_path_decomposition,
)
from repro.structures import (
    cycle,
    gaifman_graph,
    graph_structure,
    is_star_expansion,
    path,
    random_graph_structure,
    star,
    structure_graph,
)
from repro.graphlib import is_path_graph, is_tree


class TestLemma34:
    @pytest.mark.parametrize("seed", range(5))
    def test_answers_preserved_on_paths(self, seed):
        instance = HomInstance(path(4), random_graph_structure(5, 0.5, seed))
        reduced = reduce_with_decomposition(instance, optimal_tree_decomposition(path(4)))
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_answers_preserved_on_cycles(self, seed):
        pattern = cycle(4)
        instance = HomInstance(pattern, random_graph_structure(5, 0.4, seed))
        reduced = reduce_with_decomposition(instance, optimal_tree_decomposition(pattern))
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_remark_35_counts_preserved(self, seed):
        """Remark 3.5: the reduction is a bijection on homomorphism sets."""
        pattern = path(4)
        instance = HomInstance(pattern, random_graph_structure(4, 0.5, seed))
        assert hom_count_preserved(instance, optimal_tree_decomposition(pattern))

    def test_output_pattern_is_starred_tree(self):
        pattern = star(3)
        instance = HomInstance(pattern, random_graph_structure(4, 0.5, 0))
        reduced = reduce_with_decomposition(instance, optimal_tree_decomposition(pattern))
        assert is_star_expansion(reduced.pattern)
        from repro.structures import strip_star_expansion

        assert is_tree(structure_graph(strip_star_expansion(reduced.pattern)))

    def test_path_decomposition_gives_starred_path(self):
        pattern = path(4)
        instance = HomInstance(pattern, random_graph_structure(4, 0.5, 1))
        reduced = reduce_with_path_decomposition(
            instance, optimal_path_decomposition(pattern)
        )
        from repro.structures import strip_star_expansion

        assert is_path_graph(structure_graph(strip_star_expansion(reduced.pattern)))
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    def test_forest_decomposition_route(self):
        pattern = path(5)
        decomposition = decomposition_of_forest(gaifman_graph(pattern))
        instance = HomInstance(pattern, cycle(4))
        reduced = reduce_with_decomposition(instance, decomposition)
        assert has_homomorphism(pattern, cycle(4)) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    def test_reduction_object_and_parameter_bound(self):
        reduction = TreeDecompositionReduction(optimal_tree_decomposition)
        instance = HomInstance(path(3), random_graph_structure(4, 0.5, 2))
        reduced = reduction.apply(instance)
        assert reduced.parameter() <= reduction.parameter_bound(instance.parameter())
        assert reduction.preserves_answer(
            instance,
            lambda inst: has_homomorphism(inst.pattern, inst.target),
            lambda inst: has_homomorphism(inst.pattern, inst.target),
        )

    def test_works_with_nontrivial_vocabulary(self):
        """Lemma 3.4 applies to arbitrary bounded-arity structures, not just graphs."""
        from repro.structures import Structure, Vocabulary

        vocabulary = Vocabulary({"R": 3})
        pattern = Structure(vocabulary, [1, 2, 3, 4], {"R": [(1, 2, 3), (2, 3, 4)]})
        target = Structure(
            vocabulary,
            ["a", "b", "c"],
            {"R": [("a", "b", "c"), ("b", "c", "a"), ("c", "a", "b")]},
        )
        instance = HomInstance(pattern, target)
        reduced = reduce_with_decomposition(instance, optimal_tree_decomposition(pattern))
        assert has_homomorphism(pattern, target) == has_homomorphism(
            reduced.pattern, reduced.target
        )
        assert count_homomorphisms(pattern, target) == count_homomorphisms(
            reduced.pattern, reduced.target
        )
