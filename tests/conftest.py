"""Shared pytest fixtures and path setup.

The repository is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments); as a convenience the
``src`` layout is also added to ``sys.path`` so the suite runs from a bare
checkout.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.structures import (  # noqa: E402  (import after path setup)
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    cycle,
    graph_structure,
    path,
    random_graph_structure,
    star_expansion,
)


@pytest.fixture
def rng():
    """A deterministic random generator for tests that need randomness."""
    return random.Random(20130625)


@pytest.fixture
def triangle() -> Structure:
    """The 3-cycle (triangle) as an {E}-structure."""
    return cycle(3)


@pytest.fixture
def square() -> Structure:
    """The 4-cycle as an {E}-structure."""
    return cycle(4)


@pytest.fixture
def path4() -> Structure:
    """The 4-vertex path as an {E}-structure."""
    return path(4)


@pytest.fixture
def small_targets() -> list:
    """A deterministic pool of small random graph targets."""
    return [random_graph_structure(n, p, seed) for seed, (n, p) in
            enumerate([(4, 0.4), (5, 0.5), (6, 0.3), (5, 0.7), (6, 0.5)])]


def colored_target_for(pattern_star: Structure, size: int, edge_probability: float, seed: int) -> Structure:
    """Build a random target over a starred pattern's vocabulary (shared helper)."""
    rng_local = random.Random(seed)
    universe = list(range(size))
    edges = {
        (i, j)
        for i in universe
        for j in universe
        if i != j and rng_local.random() < edge_probability
    }
    edges |= {(j, i) for (i, j) in edges}
    relations = {"E": edges}
    for name in pattern_star.vocabulary.names():
        if name != "E":
            relations[name] = {
                (rng_local.choice(universe),) for _ in range(max(1, size // 3))
            }
    return Structure(pattern_star.vocabulary, universe, relations)


@pytest.fixture
def colored_target_factory():
    """Fixture exposing :func:`colored_target_for` to tests."""
    return colored_target_for
