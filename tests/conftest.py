"""Shared pytest fixtures and path setup.

The repository is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments); as a convenience the
``src`` layout is also added to ``sys.path`` so the suite runs from a bare
checkout.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.structures import (  # noqa: E402  (import after path setup)
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    cycle,
    graph_structure,
    path,
    random_graph_structure,
    star_expansion,
)


def assert_valid_tree_decomposition(graph, decomposition, expected_width=None):
    """Assert that ``decomposition`` is a valid tree decomposition of ``graph``.

    Checks the three defining properties — vertex coverage, edge
    containment, and connectivity of every vertex's bag subtree — plus,
    when ``expected_width`` is given, that the realised width equals the
    reported value (a witness must *achieve* the number it certifies).
    Reusable across the fuzz corpus and the decomposition unit tests.
    """
    bags = decomposition.bags
    covered = set()
    for bag in bags.values():
        covered.update(bag)
    assert covered == set(graph.vertices), (
        f"bags cover {covered}, graph has {set(graph.vertices)}"
    )
    for u, v in graph.edge_pairs():
        assert any(u in bag and v in bag for bag in bags.values()), (
            f"edge {(u, v)} contained in no bag"
        )
    for vertex in graph.vertices:
        holding = {node for node, bag in bags.items() if vertex in bag}
        # The bag nodes holding `vertex` must induce a connected subtree.
        start = next(iter(holding))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in decomposition.tree.neighbors(node):
                if neighbour in holding and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        assert seen == holding, (
            f"bags holding {vertex!r} are disconnected: {holding} vs reachable {seen}"
        )
    if expected_width is not None:
        realised = decomposition.width()
        assert realised == expected_width, (
            f"decomposition width {realised} != reported {expected_width}"
        )


def assert_valid_path_decomposition(graph, decomposition, expected_width=None):
    """Assert that ``decomposition`` is a valid path decomposition of ``graph``.

    Same properties as the tree variant, with connectivity specialised to
    consecutiveness: every vertex's bags must form a contiguous interval
    of the bag sequence.
    """
    bags = list(decomposition.bags)
    covered = set()
    for bag in bags:
        covered.update(bag)
    assert covered == set(graph.vertices), (
        f"bags cover {covered}, graph has {set(graph.vertices)}"
    )
    for u, v in graph.edge_pairs():
        assert any(u in bag and v in bag for bag in bags), (
            f"edge {(u, v)} contained in no bag"
        )
    for vertex in graph.vertices:
        indices = [i for i, bag in enumerate(bags) if vertex in bag]
        assert indices == list(range(indices[0], indices[-1] + 1)), (
            f"bags holding {vertex!r} are not consecutive: {indices}"
        )
    if expected_width is not None:
        realised = decomposition.width()
        assert realised == expected_width, (
            f"decomposition width {realised} != reported {expected_width}"
        )


@pytest.fixture
def rng():
    """A deterministic random generator for tests that need randomness."""
    return random.Random(20130625)


@pytest.fixture
def triangle() -> Structure:
    """The 3-cycle (triangle) as an {E}-structure."""
    return cycle(3)


@pytest.fixture
def square() -> Structure:
    """The 4-cycle as an {E}-structure."""
    return cycle(4)


@pytest.fixture
def path4() -> Structure:
    """The 4-vertex path as an {E}-structure."""
    return path(4)


@pytest.fixture
def small_targets() -> list:
    """A deterministic pool of small random graph targets."""
    return [random_graph_structure(n, p, seed) for seed, (n, p) in
            enumerate([(4, 0.4), (5, 0.5), (6, 0.3), (5, 0.7), (6, 0.5)])]


def colored_target_for(pattern_star: Structure, size: int, edge_probability: float, seed: int) -> Structure:
    """Build a random target over a starred pattern's vocabulary (shared helper)."""
    rng_local = random.Random(seed)
    universe = list(range(size))
    edges = {
        (i, j)
        for i in universe
        for j in universe
        if i != j and rng_local.random() < edge_probability
    }
    edges |= {(j, i) for (i, j) in edges}
    relations = {"E": edges}
    for name in pattern_star.vocabulary.names():
        if name != "E":
            relations[name] = {
                (rng_local.choice(universe),) for _ in range(max(1, size // 3))
            }
    return Structure(pattern_star.vocabulary, universe, relations)


@pytest.fixture
def colored_target_factory():
    """Fixture exposing :func:`colored_target_for` to tests."""
    return colored_target_for
