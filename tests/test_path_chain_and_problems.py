"""Tests for the Theorem 4.7 reduction chain and the concrete problems package."""

import pytest

from repro.exceptions import ReductionError
from repro.graphlib import Graph
from repro.homomorphism import has_homomorphism
from repro.problems import (
    find_st_path,
    has_k_path_regular,
    has_simple_cycle,
    has_simple_directed_cycle,
    has_simple_directed_path,
    has_simple_path,
    has_simple_path_color_coding,
    k_path_sentence,
    solve_st_path,
    solve_st_path_guess_and_check,
)
from repro.reductions import (
    HomInstance,
    StPathInstance,
    directed_path_to_st_path,
    hom_pstar_to_colored_odd_cycle,
    hom_pstar_to_directed_odd_cycle,
    hom_pstar_to_directed_path,
    hom_pstar_to_st_path,
    pad_to_exact_parity,
    st_path_to_directed_odd_cycle,
)
from repro.structures import (
    cycle_graph,
    grid_graph,
    path,
    path_graph,
    star_expansion,
    star_graph,
    structure_graph,
)
from tests.conftest import colored_target_for


class TestPathChain:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_link_preserves_the_answer(self, seed):
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 5, 0.45, seed)
        instance = HomInstance(pattern_star, target)
        answer = has_homomorphism(instance.pattern, instance.target)

        directed = hom_pstar_to_directed_path(instance)
        assert has_homomorphism(directed.pattern, directed.target) == answer

        st_instance = directed_path_to_st_path(directed)
        assert solve_st_path(st_instance) == answer

        odd_cycle = hom_pstar_to_directed_odd_cycle(instance)
        assert has_homomorphism(odd_cycle.pattern, odd_cycle.target) == answer

        colored = hom_pstar_to_colored_odd_cycle(instance)
        assert has_homomorphism(colored.pattern, colored.target) == answer

    @pytest.mark.parametrize("length", [2, 4])
    def test_chain_on_longer_paths(self, length):
        pattern_star = star_expansion(path(length))
        target = colored_target_for(pattern_star, 4, 0.5, length)
        instance = HomInstance(pattern_star, target)
        answer = has_homomorphism(instance.pattern, instance.target)
        assert solve_st_path(hom_pstar_to_st_path(instance)) == answer

    def test_parity_padding(self):
        graph = path_graph(4)
        instance = StPathInstance(graph, 1, 4, 3)
        padded = pad_to_exact_parity(instance, 0)
        assert padded.length_bound == 4
        assert solve_st_path(padded) == solve_st_path(instance)
        assert pad_to_exact_parity(instance, 1) is instance

    def test_odd_cycle_reduction_requires_even_bound(self):
        instance = StPathInstance(path_graph(4), 1, 4, 3)
        with pytest.raises(ReductionError):
            st_path_to_directed_odd_cycle(instance)

    def test_odd_cycle_pattern_is_odd(self):
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 4, 0.5, 2)
        colored = hom_pstar_to_colored_odd_cycle(HomInstance(pattern_star, target))
        from repro.structures import strip_star_expansion

        cycle_length = len(strip_star_expansion(colored.pattern))
        assert cycle_length % 2 == 1


class TestStPathProblem:
    def test_bfs_and_guess_and_check_agree(self):
        graph = grid_graph(3, 3)
        for bound in range(1, 6):
            instance = StPathInstance(graph, (0, 0), (2, 2), bound)
            assert solve_st_path(instance) == solve_st_path_guess_and_check(instance)

    def test_known_answers(self):
        graph = grid_graph(2, 3)
        assert solve_st_path(StPathInstance(graph, (0, 0), (1, 2), 3))
        assert not solve_st_path(StPathInstance(graph, (0, 0), (1, 2), 2))

    def test_witness_path(self):
        graph = cycle_graph(6)
        witness = find_st_path(StPathInstance(graph, 1, 4, 3))
        assert witness is not None and witness[0] == 1 and witness[-1] == 4
        assert find_st_path(StPathInstance(graph, 1, 4, 2)) is None

    def test_disconnected(self):
        graph = Graph([1, 2, 3], [(1, 2)])
        assert not solve_st_path(StPathInstance(graph, 1, 3, 5))


class TestSimplePathAndCycleProblems:
    def test_simple_path_known(self):
        assert has_simple_path(cycle_graph(5), 5)
        assert not has_simple_path(cycle_graph(5), 6)
        assert has_simple_path(grid_graph(2, 3), 6)
        assert not has_simple_path(star_graph(4), 4)

    def test_simple_directed_path(self):
        from repro.structures import directed_cycle, structure_digraph

        digraph = structure_digraph(directed_cycle(4))
        assert has_simple_directed_path(digraph, 4)
        assert not has_simple_directed_path(digraph, 5)

    def test_simple_cycle(self):
        assert has_simple_cycle(cycle_graph(5), 5)
        assert not has_simple_cycle(cycle_graph(5), 4)
        assert has_simple_cycle(grid_graph(2, 2), 4)
        assert not has_simple_cycle(path_graph(5), 3)

    def test_simple_directed_cycle(self):
        from repro.structures import directed_cycle, structure_digraph

        digraph = structure_digraph(directed_cycle(5))
        assert has_simple_directed_cycle(digraph, 5)
        assert not has_simple_directed_cycle(digraph, 3)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_color_coding_agrees_with_exhaustive(self, k):
        for graph in [cycle_graph(5), grid_graph(2, 3), star_graph(3)]:
            assert has_simple_path_color_coding(graph, k) == has_simple_path(graph, k)

    def test_k_path_sentence_shape(self):
        sentence = k_path_sentence(3)
        assert sentence.quantifier_rank() == 4


class TestProposition71RegularGraphs:
    def test_high_degree_shortcut(self):
        # 4-regular graph and k=3 < 4: always a path with 3 edges.
        from repro.structures import clique_graph

        assert has_k_path_regular(clique_graph(5), 3)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_cycle_agrees_with_exhaustive(self, k):
        graph = cycle_graph(5)
        assert has_k_path_regular(graph, k) == has_simple_path(graph, k + 1)

    def test_non_regular_rejected(self):
        with pytest.raises(ReductionError):
            has_k_path_regular(star_graph(3), 2)
