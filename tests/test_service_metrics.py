"""Metrics-registry units and the stats() schema-stability regression.

The schema test is deliberately strict: ``QueryService.stats()`` is the
service's public observability contract, so adding a top-level key is a
conscious act (update ``EXPECTED_STATS_KEYS`` here), and every value
must stay within pure JSON types — dashboards parse this dict.
"""

import json
import math

import pytest

from repro.eval import ExecutorConfig
from repro.service import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryService,
    register_store_metrics,
)
from repro.workloads import scenario_by_name


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=12, seed=5)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_counters_only_go_up(self):
        counter = Counter("jobs_total", "jobs")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_series_are_independent(self):
        counter = Counter("jobs_total", "jobs", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1.0
        assert counter.value(kind="b") == 3.0
        assert counter.collect() == {'{kind="a"}': 1.0, '{kind="b"}': 3.0}

    def test_label_mismatch_rejected(self):
        counter = Counter("jobs_total", "jobs", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(other="x")
        with pytest.raises(ValueError):
            counter.inc()  # labelled metric, no labels given

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("has space", "doc")

    def test_render_exposition_lines(self):
        counter = Counter("jobs_total", "processed jobs", labelnames=("kind",))
        counter.inc(2, kind="a")
        lines = counter.render()
        assert lines[0] == "# HELP jobs_total processed jobs"
        assert lines[1] == "# TYPE jobs_total counter"
        assert 'jobs_total{kind="a"} 2' in lines


class TestGauge:
    def test_set_inc_value(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == pytest.approx(2.5)

    def test_callback_read_at_collection_time(self):
        gauge = Gauge("depth", "queue depth")
        state = {"value": 1.0}
        gauge.set_function(lambda: state["value"])
        assert gauge.value() == 1.0
        state["value"] = 7.0
        assert gauge.collect() == {"": 7.0}

    def test_failing_callback_degrades_to_nan(self):
        """A dead callback (closed store, shut-down manager) must not
        take the whole scrape down."""
        gauge = Gauge("depth", "queue depth")
        gauge.set_function(lambda: 1 / 0)
        collected = gauge.collect()
        assert math.isnan(collected[""])
        assert "NaN" in "\n".join(gauge.render())

    def test_labelled_callbacks(self):
        gauge = Gauge("size", "sizes", labelnames=("store",))
        gauge.set_function(lambda: 3.0, store="profiles")
        gauge.set(9.0, store="answers")
        assert gauge.collect() == {
            '{store="answers"}': 9.0,
            '{store="profiles"}': 3.0,
        }


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        histogram = Histogram("latency", "seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        collected = histogram.collect()[""]
        assert collected["count"] == 4
        assert collected["sum"] == pytest.approx(6.05)
        # Buckets are cumulative: each bound counts every observation <= it.
        assert collected["buckets"] == {"0.1": 1, "1": 3, "10": 4}

    def test_observation_above_all_buckets_only_in_inf(self):
        histogram = Histogram("latency", "seconds", buckets=(1.0,))
        histogram.observe(100.0)
        collected = histogram.collect()[""]
        assert collected["buckets"] == {"1": 0}
        assert collected["count"] == 1
        lines = histogram.render()
        assert 'latency_bucket{le="+Inf"} 1' in lines
        assert "latency_count 1" in lines

    def test_buckets_are_sorted_on_construction(self):
        histogram = Histogram("latency", "seconds", buckets=(5.0, 1.0))
        assert histogram.buckets == (1.0, 5.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("latency", "seconds", buckets=())


class TestMetricsRegistry:
    def test_namespace_prefix(self):
        registry = MetricsRegistry(namespace="svc")
        counter = registry.counter("jobs_total", "jobs")
        assert counter.name == "svc_jobs_total"
        assert registry.get("jobs_total") is counter

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_total", "jobs", labelnames=("kind",))
        second = registry.counter("jobs_total", "ignored", labelnames=("kind",))
        assert first is second

    def test_shape_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs", labelnames=("kind",))
        with pytest.raises(ValueError):
            registry.counter("jobs_total", "jobs", labelnames=("other",))
        with pytest.raises(ValueError):
            registry.gauge("jobs_total", "jobs", labelnames=("kind",))

    def test_collect_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc()
        collected = registry.collect()
        assert collected == {
            "repro_jobs_total": {"type": "counter", "samples": {"": 1.0}}
        }
        json.dumps(collected)

    def test_render_prometheus_interleaves_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc()
        registry.gauge("depth", "queue depth").set(2)
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert text.endswith("\n")

    def test_label_values_escape_prometheus_specials(self):
        # One label value holding all three characters the exposition
        # format escapes: backslash (first — order matters), quote, LF.
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", labelnames=("path",))
        counter.inc(path='a\\b"c\nd')
        text = registry.render_prometheus()
        assert 'repro_ops_total{path="a\\\\b\\"c\\nd"} 1' in text
        # The sample still occupies exactly one physical line.
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1

    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", 'win\\path docs\nsecond "quoted" line')
        text = registry.render_prometheus()
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert help_lines == [
            '# HELP repro_ops_total win\\\\path docs\\nsecond "quoted" line'
        ]

    def test_register_store_metrics_exports_breaker_gauges(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1)
        ) as service:
            service.evaluate(scenario.queries)
            collected = service.metrics.collect()
        breaker = collected["repro_store_breaker_state"]["samples"]
        assert breaker['{store="profiles"}'] == 0.0  # closed
        assert breaker['{store="answers"}'] == 0.0
        resilience = collected["repro_store_resilience_counter"]["samples"]
        assert resilience['{store="profiles",counter="retries"}'] == 0.0
        assert resilience['{store="profiles",counter="degraded_computes"}'] == 0.0

    def test_register_store_metrics_exports_counters(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1)
        ) as service:
            service.evaluate(scenario.queries)
            collected = service.metrics.collect()
            store_samples = collected["repro_store_counter"]["samples"]
            computes = store_samples['{store="profiles",counter="computes"}']
            assert computes == service.stats()["classification_calls"]
            assert '{store="answers",counter="hits"}' in store_samples
            retained = collected["repro_telemetry_samples"]["samples"][""]
            assert retained > 0


EXPECTED_STATS_KEYS = {
    "queries_served",
    "batches_served",
    "pending",
    "shared_stores",
    "classification_calls",
    "stores",
    "controller",
    "mode_history",
    "calibration",
    "planner_mode",
    "planner_version",
    "monitor",
    "autotune",
    "metrics",
}

EXPECTED_MONITOR_KEYS = {
    "recycles",
    "recycle_events",
    "redispatched_chunks",
    "deadline_expiries",
    "deadline_seconds",
    "workers",
    "failovers",
    "failover_events",
}

EXPECTED_AUTOTUNE_KEYS = {
    "enabled",
    "total_solves",
    "solves_since_recalibration",
    "cooldown_remaining",
    "attempts",
    "adopted",
    "rejected",
    "tracked_patterns",
    "median_residual_factors",
    "spawn_overhead",
    "events",
}

EXPECTED_CONTROLLER_KEYS = {
    "queries_observed",
    "mean_seconds",
    "spawn_overhead_seconds",
    "drift_events",
}


def assert_json_types(value, path="stats"):
    """Every leaf must be a pure JSON type — no proxies, enums, tuples."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, dict):
        for key, item in value.items():
            assert isinstance(key, str), f"non-string key {key!r} at {path}"
            assert_json_types(item, f"{path}.{key}")
        return
    if isinstance(value, list):
        for i, item in enumerate(value):
            assert_json_types(item, f"{path}[{i}]")
        return
    raise AssertionError(f"non-JSON type {type(value).__name__} at {path}")


class TestStatsSchema:
    """The regression gate on the observability contract."""

    @pytest.fixture(scope="class")
    def stats(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=True
        ) as service:
            service.evaluate(scenario.queries)
            return service.stats()

    def test_top_level_keys_are_exactly_the_contract(self, stats):
        assert set(stats) == EXPECTED_STATS_KEYS

    def test_nested_schemas(self, stats):
        assert set(stats["monitor"]) == EXPECTED_MONITOR_KEYS
        assert set(stats["autotune"]) == EXPECTED_AUTOTUNE_KEYS
        assert set(stats["controller"]) == EXPECTED_CONTROLLER_KEYS
        assert stats["autotune"]["enabled"] is True

    def test_every_value_is_pure_json(self, stats):
        assert_json_types(stats)

    def test_json_round_trip_is_lossless(self, stats):
        assert json.loads(json.dumps(stats)) == stats

    def test_autotune_off_still_reports_the_key(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1)
        ) as service:
            stats = service.stats()
            assert set(stats) == EXPECTED_STATS_KEYS
            assert stats["autotune"] == {"enabled": False}

    def test_render_prometheus_endpoint(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1)
        ) as service:
            service.evaluate(scenario.queries[:4])
            text = service.render_prometheus()
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_batch_seconds histogram" in text
        assert 'repro_queries_total{mode="sequential"} 4' in text
