"""Tests for tree/path decompositions, exact widths, tree depth and nice decompositions."""

import pytest

from conftest import (
    assert_valid_path_decomposition,
    assert_valid_tree_decomposition,
)
from repro.decomposition import (
    EliminationForest,
    PathDecomposition,
    TreeDecomposition,
    decomposition_of_forest,
    dfs_elimination_forest,
    exact_elimination_forest,
    exact_pathwidth,
    exact_pathwidth_layout,
    exact_treedepth,
    exact_treewidth,
    exact_treewidth_ordering,
    graph_pathwidth,
    graph_treedepth,
    graph_treewidth,
    make_nice,
    min_degree_ordering,
    min_fill_ordering,
    optimal_elimination_forest,
    optimal_path_decomposition,
    optimal_tree_decomposition,
    ordering_width,
    path_decomposition_from_ordering,
    path_decomposition_of_path,
    treedepth_upper_bound,
    width_profile,
)
from repro.exceptions import DecompositionError
from repro.graphlib import Graph
from repro.structures import (
    clique_graph,
    complete_binary_tree_graph,
    cycle,
    cycle_graph,
    grid_graph,
    path,
    path_graph,
    star_graph,
)


class TestTreeDecomposition:
    def test_trivial_decomposition_valid(self):
        graph = cycle_graph(5)
        decomposition = TreeDecomposition.trivial(graph)
        decomposition.validate(graph)
        assert decomposition.width() == 4

    def test_elimination_ordering_cycle(self):
        graph = cycle_graph(6)
        decomposition = TreeDecomposition.from_elimination_ordering(
            graph, sorted(graph.vertices)
        )
        decomposition.validate(graph)
        assert_valid_tree_decomposition(graph, decomposition, 2)

    def test_validation_catches_missing_edge(self):
        graph = cycle_graph(3)
        tree = Graph(["a", "b"], [("a", "b")])
        bad = TreeDecomposition(tree, {"a": {1, 2}, "b": {2, 3}})
        with pytest.raises(DecompositionError):
            bad.validate(graph)

    def test_validation_catches_disconnected_occurrence(self):
        graph = Graph([1, 2, 3], [(1, 2), (2, 3)])
        tree = Graph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        bad = TreeDecomposition(tree, {"a": {1, 2}, "b": {2, 3}, "c": {1}})
        with pytest.raises(DecompositionError):
            bad.validate(graph)

    def test_node_graph_must_be_tree(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition(cycle_graph(3), {1: {1}, 2: {2}, 3: {3}})

    def test_forest_decomposition(self):
        graph = Graph([1, 2, 3, 4, 5], [(1, 2), (2, 3), (4, 5)])
        decomposition = decomposition_of_forest(graph)
        decomposition.validate(graph)
        assert decomposition.width() == 1

    def test_optimal_decomposition_width_matches_exact(self):
        for graph in [cycle_graph(5), grid_graph(2, 3), complete_binary_tree_graph(2)]:
            from repro.structures import graph_structure

            decomposition = optimal_tree_decomposition(graph_structure(graph))
            decomposition.validate(graph)
            assert_valid_tree_decomposition(graph, decomposition, exact_treewidth(graph))


class TestPathDecomposition:
    def test_from_ordering_path(self):
        graph = path_graph(6)
        decomposition = path_decomposition_from_ordering(graph, [1, 2, 3, 4, 5, 6])
        decomposition.validate(graph)
        assert_valid_path_decomposition(graph, decomposition, 1)

    def test_of_path_builder(self):
        decomposition = path_decomposition_of_path(path_graph(5))
        assert decomposition.width() == 1

    def test_validation_catches_nonconsecutive(self):
        bad = PathDecomposition([frozenset({1, 2}), frozenset({3}), frozenset({1, 3})])
        with pytest.raises(DecompositionError):
            bad.validate(Graph([1, 2, 3], [(1, 2), (1, 3)]))

    def test_as_tree_decomposition(self):
        graph = cycle_graph(4)
        layout = sorted(graph.vertices)
        decomposition = path_decomposition_from_ordering(graph, layout)
        tree_version = decomposition.as_tree_decomposition()
        tree_version.validate(graph)
        assert tree_version.width() == decomposition.width()

    def test_optimal_path_decomposition(self):
        from repro.structures import graph_structure

        for graph in [cycle_graph(5), star_graph(4), grid_graph(2, 3)]:
            decomposition = optimal_path_decomposition(graph_structure(graph))
            decomposition.validate(graph)
            assert_valid_path_decomposition(graph, decomposition, exact_pathwidth(graph))


class TestExactWidths:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 1),
            (cycle_graph(5), 2),
            (clique_graph(4), 3),
            (grid_graph(2, 3), 2),
            (grid_graph(3, 3), 3),
            (star_graph(5), 1),
            (complete_binary_tree_graph(2), 1),
        ],
    )
    def test_treewidth_known_values(self, graph, expected):
        assert exact_treewidth(graph) == expected

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 1),
            (cycle_graph(5), 2),
            (clique_graph(4), 3),
            (star_graph(4), 1),
            (complete_binary_tree_graph(2), 1),
            (grid_graph(2, 3), 2),
        ],
    )
    def test_pathwidth_known_values(self, graph, expected):
        assert exact_pathwidth(graph) == expected

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(1), 1),
            (path_graph(2), 2),
            (path_graph(3), 2),
            (path_graph(7), 3),
            (star_graph(5), 2),
            (cycle_graph(5), 4),
            (clique_graph(4), 4),
            (complete_binary_tree_graph(2), 3),
        ],
    )
    def test_treedepth_known_values(self, graph, expected):
        assert exact_treedepth(graph) == expected

    def test_treewidth_ordering_realises_width(self):
        graph = grid_graph(2, 4)
        width, ordering = exact_treewidth_ordering(graph)
        assert ordering_width(graph, ordering) == width == exact_treewidth(graph)

    def test_pathwidth_layout_realises_width(self):
        graph = cycle_graph(6)
        width, layout = exact_pathwidth_layout(graph)
        decomposition = path_decomposition_from_ordering(graph, layout)
        assert width == exact_pathwidth(graph)
        assert_valid_path_decomposition(graph, decomposition, width)

    def test_width_inequalities(self):
        # td - 1 >= pw >= tw for every graph (standard inequalities).
        for graph in [path_graph(6), cycle_graph(6), grid_graph(2, 3), star_graph(4)]:
            tw = exact_treewidth(graph)
            pw = exact_pathwidth(graph)
            td = exact_treedepth(graph)
            assert tw <= pw <= td - 1

    def test_heuristics_are_upper_bounds(self):
        for graph in [cycle_graph(6), grid_graph(2, 4), complete_binary_tree_graph(2)]:
            assert ordering_width(graph, min_fill_ordering(graph)) >= exact_treewidth(graph)
            assert ordering_width(graph, min_degree_ordering(graph)) >= exact_treewidth(graph)
            assert graph_treewidth(graph, exact=False) >= exact_treewidth(graph)
            assert graph_pathwidth(graph, exact=False) >= exact_pathwidth(graph)
            assert graph_treedepth(graph, exact=False) >= exact_treedepth(graph)

    def test_width_profile_facade(self):
        tw, pw, td = width_profile(cycle(5))
        assert (tw, pw, td) == (2, 2, 4)


class TestEliminationForest:
    def test_optimal_forest_witnesses_and_height(self):
        graph = cycle_graph(5)
        forest = exact_elimination_forest(graph)
        assert forest.witnesses(graph)
        assert forest.height() == exact_treedepth(graph)

    def test_forest_on_disconnected_graph(self):
        graph = Graph([1, 2, 3, 4], [(1, 2), (3, 4)])
        forest = exact_elimination_forest(graph)
        assert forest.witnesses(graph)
        assert len(forest.roots) == 2

    def test_dfs_forest_upper_bound(self):
        graph = grid_graph(2, 3)
        forest = dfs_elimination_forest(graph)
        assert forest.witnesses(graph)
        assert treedepth_upper_bound(graph) >= exact_treedepth(graph)

    def test_root_path_and_depth(self):
        forest = exact_elimination_forest(path_graph(7))
        deepest = max(forest.vertices(), key=forest.depth)
        assert forest.depth(deepest) == forest.height()
        assert forest.root_path(deepest)[0] in forest.roots

    def test_structure_facade(self):
        forest = optimal_elimination_forest(path(7))
        assert forest.height() == 3


class TestNiceDecomposition:
    def test_make_nice_preserves_width(self):
        from repro.structures import graph_structure

        for graph in [cycle_graph(5), grid_graph(2, 3), star_graph(3)]:
            decomposition = optimal_tree_decomposition(graph_structure(graph))
            nice = make_nice(decomposition)
            assert nice.width() == decomposition.width()
            assert nice.root.bag == frozenset()

    def test_nice_nodes_locally_valid(self):
        from repro.structures import graph_structure

        decomposition = optimal_tree_decomposition(graph_structure(cycle_graph(6)))
        nice = make_nice(decomposition)
        for node in nice.postorder():
            node.validate()
        assert nice.number_of_nodes() >= len(decomposition.tree.vertices)
