"""Tests for the homomorphism engines: backtracking, cores, DP solvers, tree-depth solver."""

import pytest

from repro.decomposition import (
    optimal_path_decomposition,
    optimal_tree_decomposition,
)
from repro.exceptions import DecompositionError, VocabularyError
from repro.homomorphism import (
    HomomorphismProblem,
    TreeDepthSolver,
    compatible,
    core,
    core_with_witness,
    count_automorphisms,
    count_embeddings,
    count_homomorphisms,
    count_homomorphisms_pd,
    count_homomorphisms_td,
    count_homomorphisms_treedepth,
    enumerate_homomorphisms,
    find_embedding,
    find_homomorphism,
    find_proper_retraction,
    has_embedding,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphism_exists_pd,
    homomorphism_exists_td,
    homomorphism_exists_treedepth,
    is_core,
    is_homomorphism,
    is_partial_homomorphism,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    clique,
    cycle,
    grid,
    path,
    random_graph_structure,
    star,
    star_expansion,
)


class TestBacktracking:
    def test_path_maps_into_edge(self):
        assert has_homomorphism(path(5), path(2))

    def test_odd_cycle_into_even_cycle_fails(self):
        assert not has_homomorphism(cycle(5), cycle(4))
        assert has_homomorphism(cycle(4), cycle(4))
        assert not has_homomorphism(cycle(3), cycle(5))
        assert has_homomorphism(cycle(6), cycle(3))

    def test_homomorphism_witness_is_valid(self):
        mapping = find_homomorphism(path(4), cycle(6))
        assert mapping is not None
        assert is_homomorphism(mapping, path(4), cycle(6))

    def test_count_known_values(self):
        # Homs P2 -> K3: ordered edges of K3 = 6; P3 -> K3 = 3*2*2 = 12.
        assert count_homomorphisms(path(2), clique(3)) == 6
        assert count_homomorphisms(path(3), clique(3)) == 12
        # Homs C3 -> C3: the six automorphisms (rotations + reflections).
        assert count_homomorphisms(cycle(3), cycle(3)) == 6

    def test_enumeration_matches_count(self):
        solutions = enumerate_homomorphisms(path(3), cycle(4))
        assert len(solutions) == count_homomorphisms(path(3), cycle(4))
        assert all(is_homomorphism(s, path(3), cycle(4)) for s in solutions)

    def test_embeddings_are_injective(self):
        embedding = find_embedding(path(3), cycle(5))
        assert embedding is not None
        assert len(set(embedding.values())) == 3
        assert count_embeddings(path(3), cycle(5)) == 10  # 5 positions * 2 directions

    def test_no_embedding_when_target_too_small(self):
        assert not has_embedding(path(4), cycle(3))
        assert has_homomorphism(path(4), cycle(3))

    def test_partial_assignment_respected(self):
        problem = HomomorphismProblem(path(3), cycle(6))
        pinned = problem.find(partial={1: 1})
        assert pinned is not None and pinned[1] == 1
        assert problem.count(partial={1: 1}) < problem.count()

    def test_unary_constraints_prune(self):
        starred = star_expansion(path(3))
        target = star_expansion(path(3))
        assert count_homomorphisms(starred, target) == 1

    def test_vocabulary_mismatch_rejected(self):
        other = Structure(Vocabulary({"R": 2}), [1, 2], {"R": [(1, 2)]})
        with pytest.raises(VocabularyError):
            has_homomorphism(path(2), other)

    def test_partial_homomorphism_predicate(self):
        assert is_partial_homomorphism({}, path(3), cycle(3))
        assert is_partial_homomorphism({1: 1}, path(3), cycle(3))
        assert is_partial_homomorphism({1: 1, 2: 2}, path(3), cycle(3))
        assert not is_partial_homomorphism({1: 1, 2: 1}, path(3), cycle(3))

    def test_compatible(self):
        assert compatible({1: "a"}, {2: "b"})
        assert compatible({1: "a"}, {1: "a", 2: "b"})
        assert not compatible({1: "a"}, {1: "b"})


class TestCores:
    def test_core_of_even_cycle_is_edge(self):
        assert len(core(cycle(6))) == 2

    def test_core_of_tree_is_edge(self):
        assert len(core(path(5))) == 2

    def test_odd_cycles_and_cliques_are_cores(self):
        assert is_core(cycle(5))
        assert is_core(clique(4))
        assert find_proper_retraction(cycle(5)) is None

    def test_star_expansions_are_cores(self):
        assert is_core(star_expansion(path(4)))
        assert is_core(star_expansion(grid(2, 2)))

    def test_grid_core_is_edge(self):
        # Grids are bipartite, so their core is a single edge (Example 2.1's logic).
        assert len(core(grid(2, 3))) == 2

    def test_core_witness_is_retraction(self):
        structure = cycle(6)
        core_structure, witness = core_with_witness(structure)
        assert set(witness) == set(structure.universe)
        assert set(witness.values()) == set(core_structure.universe)
        assert is_homomorphism(witness, structure, core_structure)

    def test_homomorphic_equivalence(self):
        assert homomorphically_equivalent(path(5), path(2))
        assert homomorphically_equivalent(cycle(4), cycle(6))
        assert not homomorphically_equivalent(cycle(3), cycle(5))

    def test_automorphism_counts(self):
        assert count_automorphisms(cycle(3)) == 6
        assert count_automorphisms(clique(3)) == 6
        assert count_automorphisms(star_expansion(path(3))) == 1


class TestDecompositionSolvers:
    @pytest.mark.parametrize("seed", range(4))
    def test_tree_dp_matches_bruteforce(self, seed):
        pattern = cycle(5)
        target = random_graph_structure(6, 0.5, seed)
        decomposition = optimal_tree_decomposition(pattern)
        assert homomorphism_exists_td(pattern, target, decomposition) == has_homomorphism(
            pattern, target
        )
        assert count_homomorphisms_td(pattern, target, decomposition) == count_homomorphisms(
            pattern, target
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_path_sweep_matches_bruteforce(self, seed):
        pattern = path(5)
        target = random_graph_structure(6, 0.4, seed)
        decomposition = optimal_path_decomposition(pattern)
        assert homomorphism_exists_pd(pattern, target, decomposition) == has_homomorphism(
            pattern, target
        )
        assert count_homomorphisms_pd(pattern, target, decomposition) == count_homomorphisms(
            pattern, target
        )

    def test_dp_on_disconnected_pattern(self):
        pattern = Structure(
            GRAPH_VOCABULARY, [1, 2, 3, 4], {"E": [(1, 2), (2, 1), (3, 4), (4, 3)]}
        )
        target = cycle(4)
        decomposition = optimal_tree_decomposition(pattern)
        assert count_homomorphisms_td(pattern, target, decomposition) == count_homomorphisms(
            pattern, target
        )

    def test_dp_rejects_wrong_decomposition(self):
        with pytest.raises(DecompositionError):
            homomorphism_exists_td(cycle(5), cycle(3), optimal_tree_decomposition(cycle(4)))


class TestTreeDepthSolver:
    @pytest.mark.parametrize("seed", range(4))
    def test_exists_matches_bruteforce(self, seed):
        pattern = path(6)
        target = random_graph_structure(6, 0.4, seed)
        assert homomorphism_exists_treedepth(pattern, target) == has_homomorphism(
            pattern, target
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_count_matches_bruteforce(self, seed):
        pattern = star(3)
        target = random_graph_structure(5, 0.5, seed)
        assert count_homomorphisms_treedepth(pattern, target) == count_homomorphisms(
            pattern, target
        )

    def test_count_on_disconnected_pattern(self):
        pattern = Structure(
            GRAPH_VOCABULARY, [1, 2, 3, 4], {"E": [(1, 2), (2, 1), (3, 4), (4, 3)]}
        )
        target = cycle(5)
        assert count_homomorphisms_treedepth(pattern, target) == count_homomorphisms(
            pattern, target
        )

    def test_recursion_depth_equals_forest_height(self):
        solver = TreeDepthSolver(cycle(5))
        assert solver.max_live_assignment == 4  # td(C5) = 4

    def test_count_refuses_core_reduction(self):
        solver = TreeDepthSolver(cycle(6), use_core=True)
        with pytest.raises(DecompositionError):
            solver.count(cycle(4))

    def test_odd_cycle_colouring_behaviour(self):
        assert homomorphism_exists_treedepth(cycle(6), cycle(3))
        assert not homomorphism_exists_treedepth(cycle(5), cycle(4))

    def test_gaifman_graph_built_once(self, monkeypatch):
        # The constructor needs the Gaifman graph for both the exact
        # elimination forest and the witness check; it must not be
        # rebuilt per use.
        import repro.homomorphism.treedepth_solver as module

        calls = []
        real = module.gaifman_graph

        def counting_gaifman(structure):
            calls.append(structure)
            return real(structure)

        monkeypatch.setattr(module, "gaifman_graph", counting_gaifman)
        TreeDepthSolver(path(4))
        assert len(calls) == 1


NULLARY_VOCABULARY = Vocabulary({"E": 2, "Z": 0})


class TestNullaryAtoms:
    """A nullary atom of the source failing in the target blocks every solver.

    Regression for the soundness gap the PR-2 differential fuzzing
    surfaced: the backtracking "ground truth" skipped arity-0
    constraints entirely, so it disagreed with the join engine on
    vocabularies with nullary symbols.  The check now lives in
    ``repro.homomorphism.obstructions`` and every solver applies it.
    """

    def _pair(self, target_has_nullary: bool):
        source = Structure(
            NULLARY_VOCABULARY, [1, 2], {"E": [(1, 2)], "Z": [()]}
        )
        target = Structure(
            NULLARY_VOCABULARY,
            [1, 2, 3],
            {"E": [(1, 2), (2, 3)], "Z": [()] if target_has_nullary else []},
        )
        return source, target

    def test_all_solvers_reject_obstructed_pair(self):
        source, target = self._pair(target_has_nullary=False)
        from repro.homomorphism import (
            homomorphism_exists_join,
            nullary_obstruction,
        )

        assert nullary_obstruction(source, target)
        assert not has_homomorphism(source, target)
        assert not has_embedding(source, target)
        assert count_homomorphisms(source, target) == 0
        assert enumerate_homomorphisms(source, target) == []
        assert not homomorphism_exists_join(source, target)
        assert not homomorphism_exists_treedepth(source, target)
        assert count_homomorphisms_treedepth(source, target) == 0

    def test_all_solvers_agree_when_target_satisfies_nullary(self):
        source, target = self._pair(target_has_nullary=True)
        from repro.homomorphism import (
            count_homomorphisms_join,
            homomorphism_exists_join,
            nullary_obstruction,
        )

        assert not nullary_obstruction(source, target)
        assert has_homomorphism(source, target)
        assert homomorphism_exists_join(source, target)
        assert homomorphism_exists_treedepth(source, target)
        assert (
            count_homomorphisms(source, target)
            == count_homomorphisms_join(source, target)
            == count_homomorphisms_treedepth(source, target)
        )

    def test_empty_source_nullary_relation_is_no_obstruction(self):
        from repro.homomorphism import nullary_obstruction

        source = Structure(NULLARY_VOCABULARY, [1, 2], {"E": [(1, 2)]})
        target = Structure(NULLARY_VOCABULARY, [1, 2], {"E": [(1, 2)]})
        assert not nullary_obstruction(source, target)
        assert has_homomorphism(source, target)
