"""Tests for telemetry-driven planner calibration (:mod:`repro.service.telemetry`)."""

import math
import time

import pytest

from repro.classification import PlannerConfig, classify_structure
from repro.classification.degrees import ComplexityDegree
from repro.classification.solver_dispatch import (
    DEFAULT_PLANNER_CONFIG,
    solve_with_degree,
)
from repro.eval import DatabaseStatistics, plan_query, route_raw_units
from repro.service import (
    CalibrationState,
    RouteTimingCase,
    SolveSample,
    calibrate_planner,
    fit_route_weights,
    make_sample,
    routed_seconds,
    select_planner,
)
from repro.workloads import scenario_by_name

ROUTES = list(ComplexityDegree)


def synthetic_samples(weights, per_route=6, base_units=100.0):
    """Noise-free samples obeying ``t = w · x`` exactly, per route."""
    samples = []
    for degree, weight in weights.items():
        for i in range(per_route):
            units = base_units * (i + 1)
            samples.append(
                SolveSample(
                    route=degree.value,
                    raw_units=units,
                    seconds=weight * units,
                    core_size=3,
                    universe_size=20,
                    branching=2.0,
                )
            )
    return samples


class TestFitRouteWeights:
    def test_recovers_exact_weights_from_noiseless_samples(self):
        true_weights = {
            ComplexityDegree.PARA_L: 2e-6,
            ComplexityDegree.PATH_COMPLETE: 5e-6,
            ComplexityDegree.TREE_COMPLETE: 8e-6,
            ComplexityDegree.W1_HARD: 1e-6,
        }
        weights, report = fit_route_weights(synthetic_samples(true_weights))
        for degree, expected in true_weights.items():
            assert math.isclose(weights[degree], expected, rel_tol=1e-9)
            assert report[degree.value]["samples"] == 6

    def test_unfitted_routes_scale_with_the_fitted_median(self):
        # Only PARA_L observed, at exactly 10x its hand-set weight scale.
        true = {ComplexityDegree.PARA_L: DEFAULT_PLANNER_CONFIG.treedepth_cost_weight * 10}
        weights, report = fit_route_weights(synthetic_samples(true))
        # The other routes keep their hand-set ratios, rescaled by 10.
        assert math.isclose(
            weights[ComplexityDegree.PATH_COMPLETE],
            DEFAULT_PLANNER_CONFIG.path_cost_weight * 10,
            rel_tol=1e-9,
        )
        assert report[ComplexityDegree.TREE_COMPLETE.value]["samples"] == 0

    def test_no_samples_returns_hand_set_weights(self):
        weights, _ = fit_route_weights([])
        assert weights[ComplexityDegree.PATH_COMPLETE] == (
            DEFAULT_PLANNER_CONFIG.path_cost_weight
        )

    def test_degenerate_zero_timings_stay_positive(self):
        samples = [
            SolveSample("para-L", 100.0, 0.0, 2, 10, 1.5) for _ in range(4)
        ]
        weights, _ = fit_route_weights(samples)
        assert weights[ComplexityDegree.PARA_L] > 0.0


class TestCalibratePlanner:
    def test_insufficient_samples_keeps_hand_set_config(self):
        result = calibrate_planner([], min_samples=8)
        assert result.source == "insufficient-samples"
        assert result.planner is DEFAULT_PLANNER_CONFIG
        assert result.spawn_cost_threshold is None

    def test_fitted_config_is_cost_mode_with_seconds_threshold(self):
        true = {degree: 1e-6 for degree in ROUTES}
        result = calibrate_planner(
            synthetic_samples(true), spawn_overhead_seconds=0.004
        )
        assert result.source == "fitted"
        assert result.planner.mode == "cost"
        assert result.spawn_cost_threshold == 0.004
        assert math.isclose(
            result.planner.treedepth_cost_weight, 1e-6, rel_tol=1e-9
        )

    def test_make_sample_uses_route_raw_units(self):
        scenario = scenario_by_name("grid_walks", count=3, seed=1)
        query = scenario.queries[0]
        profile = classify_structure(query.canonical_structure())
        stats = DatabaseStatistics.of(
            scenario.database.to_structure(query.vocabulary())
        )
        sample = make_sample(ComplexityDegree.PARA_L, profile, stats, 0.5)
        assert sample.raw_units == route_raw_units(profile, stats)[
            ComplexityDegree.PARA_L
        ]
        assert sample.seconds == 0.5
        assert sample.universe_size == stats.universe_size


class _Case:
    """Build RouteTimingCases with controllable per-route timings."""

    @staticmethod
    def make(seconds_by_route):
        scenario = scenario_by_name("grid_walks", count=2, seed=5)
        query = scenario.queries[0]
        profile = classify_structure(query.canonical_structure())
        stats = DatabaseStatistics.of(
            scenario.database.to_structure(query.vocabulary())
        )
        return RouteTimingCase(profile, stats, seconds_by_route)


class TestSelectPlanner:
    def _uniform_times(self, value):
        return {degree: value for degree in ROUTES}

    def test_fitted_adopted_when_it_wins_everywhere(self):
        # All routes cost the same, so any route choice ties: win-or-tie.
        cases = {"s1": [_Case.make(self._uniform_times(1.0))]}
        fitted = PlannerConfig(mode="cost", treedepth_cost_weight=9.9)
        chosen, report = select_planner(fitted, DEFAULT_PLANNER_CONFIG, cases)
        assert chosen is fitted
        assert report["s1"]["win_or_tie"] is True

    def test_fallback_when_fitted_loses_any_workload(self):
        # Make the route the fitted config would pick catastrophically
        # slow, so the incumbent's choice wins and the guard must fire.
        case = _Case.make(self._uniform_times(1.0))
        incumbent_route = plan_query(
            case.profile, case.stats, DEFAULT_PLANNER_CONFIG
        ).degree
        fitted = PlannerConfig(
            mode="cost",
            treedepth_cost_weight=1e9,
            path_cost_weight=1e9,
            tree_cost_weight=1e9,
            backtracking_cost_weight=1e-9,
        )
        fitted_route = plan_query(case.profile, case.stats, fitted).degree
        times = self._uniform_times(1.0)
        if fitted_route is incumbent_route:
            pytest.skip("routes agree; cannot construct a loss")
        times[fitted_route] = 100.0
        cases = {"good": [_Case.make(self._uniform_times(1.0))],
                 "bad": [RouteTimingCase(case.profile, case.stats, times)]}
        chosen, report = select_planner(fitted, DEFAULT_PLANNER_CONFIG, cases)
        assert chosen is DEFAULT_PLANNER_CONFIG
        assert report["bad"]["win_or_tie"] is False

    def test_routed_seconds_respects_multiplicity(self):
        times = {degree: 2.0 for degree in ROUTES}
        case = _Case.make(times)
        weighted = RouteTimingCase(
            case.profile, case.stats, times, weight=5
        )
        assert routed_seconds([weighted], DEFAULT_PLANNER_CONFIG) == 10.0


class TestCalibrationNeverRegressesScenarios:
    """The satellite regression test: measured per-route timings from real
    scenarios, a calibration fitted from them, and the guard's guarantee
    that the shipped config never loses a scenario to the hand-set one."""

    SCENARIOS = ("grid_walks", "acyclic_random")

    def _measured_cases(self):
        cases = {}
        samples = []
        for name in self.SCENARIOS:
            scenario = scenario_by_name(name, count=8, seed=11)
            target_cache = {}
            entries = []
            seen = {}
            for query in scenario.queries:
                pattern = query.canonical_structure()
                if pattern in seen:
                    continue
                seen[pattern] = True
                vocabulary = query.vocabulary()
                target = target_cache.setdefault(
                    vocabulary, scenario.database.to_structure(vocabulary)
                )
                profile = classify_structure(pattern)
                stats = DatabaseStatistics.of(target)
                seconds = {}
                for degree in ROUTES:
                    solve_with_degree(pattern, target, degree, profile)  # warm-up
                    start = time.perf_counter()
                    solve_with_degree(pattern, target, degree, profile)
                    seconds[degree] = time.perf_counter() - start
                entries.append(RouteTimingCase(profile, stats, seconds))
                samples.append(
                    make_sample(
                        plan_query(profile, stats, DEFAULT_PLANNER_CONFIG).degree,
                        profile,
                        stats,
                        seconds[
                            plan_query(profile, stats, DEFAULT_PLANNER_CONFIG).degree
                        ],
                    )
                )
            cases[name] = entries
        return cases, samples

    def test_guarded_calibration_wins_or_ties_every_scenario(self):
        cases, samples = self._measured_cases()
        result = calibrate_planner(samples, min_samples=1)
        chosen, report = select_planner(
            result.planner, DEFAULT_PLANNER_CONFIG, cases
        )
        # Whatever the fit produced, the shipped config must win or tie
        # everywhere — by adoption or by fallback.
        for name in self.SCENARIOS:
            assert (
                routed_seconds(cases[name], chosen)
                <= routed_seconds(cases[name], DEFAULT_PLANNER_CONFIG) * (1 + 1e-12)
            ), report


class TestCalibrationState:
    def test_save_load_round_trip(self, tmp_path):
        true = {degree: 2e-6 for degree in ROUTES}
        result = calibrate_planner(
            synthetic_samples(true), spawn_overhead_seconds=0.003
        )
        path = str(tmp_path / "calibration.json")
        result.state().save(path)
        loaded = CalibrationState.load(path)
        assert loaded.planner == result.planner
        assert loaded.spawn_cost_threshold == 0.003
        assert loaded.source == "fitted"
        assert loaded.sample_count == result.sample_count

    def test_planner_config_dict_round_trip(self):
        config = PlannerConfig(mode="cost", path_cost_weight=1.25)
        assert PlannerConfig.from_dict(config.to_dict()) == config
