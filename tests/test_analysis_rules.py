"""The static-analysis self-test corpus.

Every rule gets a paired fixture: a *bad* snippet it must fire on and a
*good* snippet (the sanctioned spelling of the same intent) it must stay
quiet on.  On top of the per-rule corpus: suppression comments, the
baseline workflow, CLI exit codes, and the self-scan — ``src/`` must be
clean, because CI gates on exactly that.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, analyze_paths
from repro.analysis.cli import main as cli_main
from repro.analysis.registry import rule_catalogue
from repro.exceptions import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"

ALL_RULES = (
    "API001", "API002", "API003", "API004",
    "DET001", "DET002", "DET003", "DET004",
    "FRK001", "FRK002", "FRK003",
    "LCK001",
    "PRX001", "PRX002",
)


def scan_snippet(tmp_path, rel_path, code, rules=None):
    """Write one fixture module and scan it; return fired rule ids."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    report = analyze_paths([str(tmp_path)], rules=rules)
    assert report.parse_errors == [], report.parse_errors
    return [finding.rule for finding in report.findings], report


# ---------------------------------------------------------------------------
# the rule catalogue itself
# ---------------------------------------------------------------------------

class TestCatalogue:
    def test_all_rules_registered(self):
        assert tuple(row["rule"] for row in rule_catalogue()) == ALL_RULES

    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_paths([str(REPO_SRC / "repro" / "exceptions.py")], rules=["NOPE"])


# ---------------------------------------------------------------------------
# determinism rules
# ---------------------------------------------------------------------------

class TestDET001:
    def test_fires_on_global_rng_and_unseeded_random(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import random

            def pick(xs):
                r = random.Random()
                return random.choice(xs), r.random()
            """,
        )
        assert fired == ["DET001", "DET001"]

    def test_quiet_on_seeded_instance(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import random

            def pick(xs, seed):
                rng = random.Random(seed)
                return rng.choice(xs)
            """,
        )
        assert fired == []


class TestDET002:
    def test_fires_on_set_iteration_into_ordered_output(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "structures/mod.py",
            """
            def encode(xs, ys):
                first = list(set(xs))
                second = [x for x in set(ys)]
                out = []
                for x in set(xs) | set():
                    pass
                for x in frozenset(ys):
                    out.append(x)
                return first, second, out
            """,
        )
        assert fired == ["DET002", "DET002", "DET002"]

    def test_quiet_when_sorted_or_outside_scope(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "structures/mod.py",
            """
            def encode(xs, ys):
                first = sorted(set(xs), key=repr)
                total = sum(set(ys))
                return first, total
            """,
        )
        assert fired == []
        fired, _ = scan_snippet(
            tmp_path, "service/mod.py",
            """
            def encode(xs):
                return list(set(xs))
            """,
        )
        assert fired == []


class TestDET003:
    def test_fires_on_id_sort_key(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            def order(xs):
                xs.sort(key=id)
                return sorted(xs, key=lambda v: (id(v), v))
            """,
        )
        assert fired == ["DET003", "DET003"]

    def test_quiet_on_structural_key(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            def order(xs):
                return sorted(xs, key=repr)
            """,
        )
        assert fired == []


class TestDET004:
    def test_fires_on_wall_clock_in_solver_dir(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "decomposition/mod.py",
            """
            import time

            def solve(g):
                return time.time()
            """,
        )
        assert fired == ["DET004"]

    def test_quiet_on_monotonic_and_outside_solver_dirs(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "decomposition/mod.py",
            """
            import time

            def solve(g):
                return time.monotonic() + time.perf_counter()
            """,
        )
        assert fired == []
        fired, _ = scan_snippet(
            tmp_path, "service/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert fired == []


# ---------------------------------------------------------------------------
# fork/spawn-safety rules
# ---------------------------------------------------------------------------

class TestFRK001:
    def test_fires_on_lambda_bound_method_and_closure(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Service:
                def go(self, pool, chunk):
                    pool.submit(lambda: chunk)
                    pool.submit(self.work, chunk)

                def run(self, pool):
                    def inner():
                        return 1
                    return pool.submit(inner)
            """,
        )
        assert fired == ["FRK001", "FRK001", "FRK001"]

    def test_quiet_on_module_level_function(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            def _work(chunk):
                return chunk

            def run(pool, chunks):
                return [pool.submit(_work, c) for c in chunks]
            """,
        )
        assert fired == []


class TestFRK002:
    def test_fires_when_no_initializer_populates_the_global(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            _CONTEXT = None

            def _work(chunk):
                return _CONTEXT.solve(chunk)

            def run(pool, chunks):
                return [pool.submit(_work, c) for c in chunks]
            """,
        )
        assert fired == ["FRK002"]

    def test_quiet_with_initialize_worker_rebinding(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            _CONTEXT = None

            def _initialize_worker(context):
                global _CONTEXT
                _CONTEXT = context

            def _work(chunk):
                return _CONTEXT.solve(chunk)

            def run(pool, chunks):
                return [pool.submit(_work, c) for c in chunks]
            """,
        )
        assert fired == []


class TestFRK003:
    def test_fires_on_pid_captured_in_init(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import os

            class Claimer:
                def __init__(self):
                    self._token = os.getpid()
            """,
        )
        assert fired == ["FRK003"]

    def test_quiet_on_per_call_pid(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import os

            class Claimer:
                def token(self):
                    return os.getpid()
            """,
        )
        assert fired == []


# ---------------------------------------------------------------------------
# manager-proxy race rules
# ---------------------------------------------------------------------------

class TestPRX001:
    def test_fires_on_unlocked_rmw_and_check_then_mutate(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Store:
                def __init__(self, manager):
                    self._data = manager.dict()
                    self._rows = manager.list()

                def bump(self, key):
                    self._data[key] = self._data.get(key, 0) + 1

                def inc(self, key):
                    self._data[key] += 1

                def trim(self, bound):
                    while len(self._rows) > bound:
                        self._rows.pop(0)
            """,
        )
        assert fired == ["PRX001", "PRX001", "PRX001"]

    def test_fires_on_mutating_the_fetched_copy_even_under_lock(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Store:
                def __init__(self, manager):
                    self._data = manager.dict()
                    self._lock = manager.Lock()

                def push(self, key, item):
                    with self._lock:
                        self._data[key].append(item)
            """,
        )
        assert fired == ["PRX001"]

    def test_quiet_under_lock_or_single_assignment(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Store:
                def __init__(self, manager):
                    self._data = manager.dict()
                    self._rows = manager.list()
                    self._lock = manager.Lock()

                def bump(self, key):
                    with self._lock:
                        self._data[key] = self._data.get(key, 0) + 1

                def publish(self, key, value):
                    self._data[key] = value

                def trim(self, bound):
                    with self._lock:
                        while len(self._rows) > bound:
                            self._rows.pop(0)
            """,
        )
        assert fired == []

    def test_taint_flows_through_classmethod_constructor(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Sink:
                def __init__(self, batches, bound):
                    self._batches = batches
                    self._bound = bound

                @classmethod
                def managed(cls, manager):
                    return cls(manager.list(), 16)

                def record(self, batch):
                    self._batches.append(batch)
                    while len(self._batches) > self._bound:
                        self._batches.pop(0)
            """,
        )
        assert fired == ["PRX001"]


class TestPRX002:
    def test_fires_on_claim_released_outside_finally(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Store:
                def __init__(self, manager):
                    self._data = manager.dict()

                def get_or_compute(self, key, claim, compute):
                    entry = self._data.setdefault(key, claim)
                    try:
                        value = compute()
                    except Exception:
                        del self._data[key]
                        raise
                    self._data[key] = value
                    return value
            """,
        )
        assert fired == ["PRX002"]

    def test_quiet_with_finally_release(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            class Store:
                def __init__(self, manager):
                    self._data = manager.dict()

                def get_or_compute(self, key, claim, compute):
                    entry = self._data.setdefault(key, claim)
                    published = False
                    try:
                        value = compute()
                        self._data[key] = value
                        published = True
                    finally:
                        if not published:
                            del self._data[key]
                    return value
            """,
        )
        assert fired == []


# ---------------------------------------------------------------------------
# lock-discipline rule
# ---------------------------------------------------------------------------

class TestLCK001:
    def test_fires_on_lock_free_access_elsewhere(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0

                def add(self, n):
                    with self._lock:
                        self._total += n

                def read(self):
                    return self._total
            """,
        )
        assert fired == ["LCK001"]

    def test_quiet_when_every_access_is_locked(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0

                def add(self, n):
                    with self._lock:
                        self._total += n

                def read(self):
                    with self._lock:
                        return self._total
            """,
        )
        assert fired == []


# ---------------------------------------------------------------------------
# API contract rules
# ---------------------------------------------------------------------------

class TestAPI001:
    def test_fires_on_direct_metric_constructor(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "service/frontend.py",
            """
            from repro.service.metrics import Counter

            def build():
                return Counter("queries_total", "Queries served")
            """,
        )
        assert fired == ["API001"]

    def test_quiet_in_metrics_module_and_through_registry(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "service/metrics.py",
            """
            class Counter:
                pass

            def build():
                return Counter()
            """,
        )
        assert fired == []
        fired, _ = scan_snippet(
            tmp_path, "service/frontend.py",
            """
            def build(registry):
                return registry.counter("queries_total", "Queries served")
            """,
        )
        assert fired == []


class TestAPI002:
    def test_fires_outside_the_dispatch_allowlist(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "eval/planner.py",
            """
            from repro.classification.solver_dispatch import solve_with_degree

            def shortcut(pattern, target, degree, profile):
                return solve_with_degree(pattern, target, degree, profile)
            """,
        )
        assert fired == ["API002"]

    def test_quiet_in_allowlisted_modules(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "service/autotune.py",
            """
            from repro.classification.solver_dispatch import solve_with_degree

            def probe(pattern, target, degree, profile):
                return solve_with_degree(pattern, target, degree, profile)
            """,
        )
        assert fired == []


class TestAPI003:
    def test_fires_on_cross_module_legacy_call(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            from repro.decomposition import legacy_exact_treedepth

            def width(graph):
                return legacy_exact_treedepth(graph)
            """,
        )
        assert fired == ["API003"]

    def test_quiet_when_the_module_defines_its_own_legacy(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            def legacy_exact_treedepth(graph):
                return 0

            def width(graph):
                return legacy_exact_treedepth(graph)
            """,
        )
        assert fired == []


class TestAPI004:
    def test_fires_on_bare_proxy_ops_in_service_code(self, tmp_path):
        fired, report = scan_snippet(
            tmp_path, "service/mod.py",
            """
            class Monitor:
                def __init__(self, heartbeat_board):
                    self._heartbeat_board = heartbeat_board

                def snapshot(self):
                    return dict(self._heartbeat_board)

                def forget(self, worker):
                    self._heartbeat_board.pop(worker, None)
            """,
        )
        assert fired == ["API004", "API004"]
        assert "bypasses the fault policy" in report.findings[0].message

    def test_quiet_when_quarantined_in_a_raw_function(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "service/mod.py",
            """
            class Monitor:
                def __init__(self, heartbeat_board, policy):
                    self._heartbeat_board = heartbeat_board
                    self._policy = policy

                def snapshot(self):
                    def _snapshot_raw():
                        return dict(self._heartbeat_board)
                    return self._policy.run(_snapshot_raw, op_name="snapshot")

                def forget(self, worker):
                    self._guard(
                        lambda: self._heartbeat_board.pop(worker, None)
                    )
            """,
        )
        assert fired == []

    def test_quiet_outside_the_service_layer(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "eval/mod.py",
            """
            class Context:
                def __init__(self, heartbeat_board):
                    self._heartbeat_board = heartbeat_board

                def snapshot(self):
                    return dict(self._heartbeat_board)
            """,
        )
        assert fired == []

    def test_quiet_on_untainted_mappings(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "service/mod.py",
            """
            def summarise(plain_counts):
                plain_counts.pop("stale", None)
                return dict(plain_counts)
            """,
        )
        assert fired == []


# ---------------------------------------------------------------------------
# suppressions and baseline
# ---------------------------------------------------------------------------

class TestSuppression:
    def test_inline_ignore_suppresses_matching_rule(self, tmp_path):
        fired, report = scan_snippet(
            tmp_path, "mod.py",
            """
            def order(xs):
                return sorted(xs, key=id)  # repro: ignore[DET003] — test fixture
            """,
        )
        assert fired == []
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        fired, _ = scan_snippet(
            tmp_path, "mod.py",
            """
            def order(xs):
                return sorted(xs, key=id)  # repro: ignore[DET001]
            """,
        )
        assert fired == ["DET003"]

    def test_star_suppresses_everything_on_the_line(self, tmp_path):
        fired, report = scan_snippet(
            tmp_path, "mod.py",
            """
            def order(xs):
                return sorted(xs, key=id)  # repro: ignore[*]
            """,
        )
        assert fired == []
        assert report.suppressed == 1


class TestBaseline:
    def _finding_file(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def order(xs):\n    return sorted(xs, key=id)\n"
        )
        return tmp_path

    def test_baseline_absorbs_documented_false_positive(self, tmp_path):
        root = self._finding_file(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "findings": [
                {"path": "mod.py", "rule": "DET003", "line": 2,
                 "note": "documented: fixture"},
            ]
        }))
        report = analyze_paths([str(root)], baseline=Baseline.load(str(baseline_path)))
        findings = [f for f in report.findings if f.path.endswith(".py")]
        assert findings == []
        assert report.baselined == 1

    def test_stale_entries_are_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "findings": [
                {"path": "gone.py", "rule": "DET003", "note": "was fixed"},
            ]
        }))
        (tmp_path / "clean.py").write_text("X = 1\n")
        report = analyze_paths([str(tmp_path)], baseline=Baseline.load(str(baseline_path)))
        assert report.stale_baseline == [
            {"path": "gone.py", "rule": "DET003", "unmatched": 1}
        ]

    def test_baseline_entry_without_note_rejected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "findings": [{"path": "mod.py", "rule": "DET003"}]
        }))
        with pytest.raises(AnalysisError):
            Baseline.load(str(baseline_path))

    def test_missing_baseline_file_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            Baseline.load(str(tmp_path / "nope.json"))


# ---------------------------------------------------------------------------
# CLI behaviour
# ---------------------------------------------------------------------------

class TestCli:
    def test_clean_scan_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("X = 1\n")
        assert cli_main([str(tmp_path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_findings_exit_one_with_text_and_json(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def order(xs):\n    return sorted(xs, key=id)\n"
        )
        assert cli_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out and "FAIL:" in out
        assert cli_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "DET003"

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "missing"), "--format", "text"]) == 2
        assert cli_main([str(tmp_path), "--rules", "NOPE"]) == 2
        capsys.readouterr()

    def test_rule_selection_and_list_rules(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def order(xs):\n    return sorted(xs, key=id)\n"
        )
        assert cli_main([str(tmp_path), "--rules", "DET001"]) == 0
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def order(xs):\n    return sorted(xs, key=id)\n"
        )
        baseline_path = tmp_path / "baseline.json"
        assert cli_main([str(tmp_path), "--write-baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        skeleton = json.loads(baseline_path.read_text())
        assert skeleton["findings"][0]["rule"] == "DET003"
        # The skeleton's TODO notes satisfy the note requirement once edited;
        # un-edited they still parse (the note is non-empty).
        assert cli_main([str(tmp_path), "--baseline", str(baseline_path)]) == 0

    def test_parse_errors_fail_the_scan(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def nope(:\n")
        assert cli_main([str(tmp_path)]) == 1
        assert "PARSE" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# the self-scan: the repo's own source must be clean
# ---------------------------------------------------------------------------

class TestSelfScan:
    def test_repo_source_is_clean(self):
        report = analyze_paths([str(REPO_SRC)])
        assert report.parse_errors == []
        assert [finding.render() for finding in report.findings] == []

    def test_module_entry_point_is_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/", "--format", "json"],
            cwd=str(REPO_ROOT),
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_SRC),
            },
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["clean"] is True
        assert payload["files_scanned"] > 100
