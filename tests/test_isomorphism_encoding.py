"""Tests for isomorphism checking, encodings, Gaifman graphs and random generators."""

import pytest

from repro.exceptions import StructureError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    are_isomorphic,
    cycle,
    decode_structure,
    encode_bits,
    encode_structure,
    encoded_length,
    find_isomorphism,
    gaifman_graph,
    graph_structure,
    is_connected_structure,
    path,
    planted_homomorphism_target,
    random_graph,
    random_graph_structure,
    random_structure,
    random_tree_graph,
    star_expansion,
)
from repro.graphlib import is_tree
from repro.homomorphism import is_homomorphism


class TestIsomorphism:
    def test_relabelled_structures_are_isomorphic(self):
        renamed = path(4).relabel({1: "a", 2: "b", 3: "c", 4: "d"})
        mapping = find_isomorphism(path(4), renamed)
        assert mapping is not None
        assert is_homomorphism(mapping, path(4), renamed)

    def test_path_not_isomorphic_to_cycle(self):
        assert not are_isomorphic(path(4), cycle(4))

    def test_different_sizes(self):
        assert not are_isomorphic(path(3), path(4))

    def test_star_expansions_distinguish_elements(self):
        # Starred paths are rigid, so the only isomorphism is the identity.
        starred = star_expansion(path(3))
        mapping = find_isomorphism(starred, starred)
        assert mapping == {a: a for a in starred.universe}

    def test_cycles_isomorphic_to_rotations(self):
        rotated = cycle(5).relabel({1: 2, 2: 3, 3: 4, 4: 5, 5: 1})
        assert are_isomorphic(cycle(5), rotated)

    def test_different_vocabularies(self):
        other = Structure(Vocabulary({"R": 2}), [1, 2], {"R": [(1, 2)]})
        assert not are_isomorphic(path(2), other)


class TestEncoding:
    def test_roundtrip_is_isomorphic(self):
        for structure in [path(4), cycle(5), star_expansion(path(3))]:
            decoded = decode_structure(encode_structure(structure))
            assert are_isomorphic(structure, decoded)

    def test_equal_structures_equal_encodings(self):
        assert encode_structure(path(4)) == encode_structure(path(4))

    def test_encoded_length_positive_and_bits(self):
        assert encoded_length(path(3)) == len(encode_bits(path(3)))
        assert set(encode_bits(path(2))) <= {"0", "1"}

    def test_malformed_encoding_rejected(self):
        with pytest.raises(StructureError):
            decode_structure("{not json")


class TestGaifman:
    def test_gaifman_of_graph_structure_is_graph(self):
        from repro.structures import cycle_graph

        assert gaifman_graph(cycle(5)) == cycle_graph(5)

    def test_gaifman_of_ternary_tuple_is_clique(self):
        structure = Structure(Vocabulary({"R": 3}), [1, 2, 3], {"R": [(1, 2, 3)]})
        graph = gaifman_graph(structure)
        assert graph.number_of_edges() == 3

    def test_repeated_elements_no_self_loop(self):
        structure = Structure(Vocabulary({"R": 2}), [1, 2], {"R": [(1, 1), (1, 2)]})
        graph = gaifman_graph(structure)
        assert graph.number_of_edges() == 1

    def test_connectivity_predicate(self):
        assert is_connected_structure(cycle(4))
        disconnected = Structure(GRAPH_VOCABULARY, [1, 2, 3], {"E": [(1, 2), (2, 1)]})
        assert not is_connected_structure(disconnected)


class TestRandomGenerators:
    def test_random_graph_determinism(self):
        assert random_graph(8, 0.5, 7) == random_graph(8, 0.5, 7)
        assert random_graph_structure(6, 0.4, 1) == random_graph_structure(6, 0.4, 1)

    def test_random_graph_extremes(self):
        assert random_graph(5, 0.0, 1).number_of_edges() == 0
        assert random_graph(5, 1.0, 1).number_of_edges() == 10

    def test_random_tree_is_tree(self):
        assert is_tree(random_tree_graph(10, 3))

    def test_random_structure_respects_vocabulary(self):
        vocabulary = Vocabulary({"R": 3, "C": 1})
        structure = random_structure(vocabulary, 5, 4, 9)
        assert all(len(t) == 3 for t in structure.relation("R"))
        assert all(len(t) == 1 for t in structure.relation("C"))

    def test_planted_target_always_yes(self):
        from repro.homomorphism import has_homomorphism

        pattern = cycle(5)
        target = planted_homomorphism_target(pattern, 9, noise_edges=4, seed=2)
        assert has_homomorphism(pattern, target)

    def test_planted_target_size_check(self):
        with pytest.raises(StructureError):
            planted_homomorphism_target(cycle(5), 3, 0)

    def test_bad_probability_rejected(self):
        with pytest.raises(StructureError):
            random_graph(5, 1.5)
