"""Tests for the branch-and-bound treedepth engine.

Three layers of evidence, mirroring how the engine is allowed to replace
the seed solver:

* **differential fuzz** — on 100+ random graphs of ≤ 12 vertices the
  engine's value must equal :func:`legacy_exact_treedepth` (the seed
  subset recursion, kept verbatim for exactly this purpose);
* **known closed forms** — paths, cycles, cliques and complete binary
  trees up to 25 vertices have textbook treedepths
  (``td(P_n) = ⌈log2(n+1)⌉``, ``td(C_n) = 1 + ⌈log2 n⌉``,
  ``td(K_n) = n``, ``td(T_h) = h``);
* **witnesses** — every engine run must return an elimination forest
  that :meth:`EliminationForest.witnesses` verifies and whose height
  equals the reported value, so an engine bug cannot silently report an
  infeasible depth.

Plus the facade/classifier wiring: the width facade must now be exact at
13–25 elements (and for recognised shapes beyond), which is what makes
td(C13) = 5 visible end to end.
"""

import math
import random

import pytest

from repro.classification.classifier import classify_structure
from repro.decomposition.treedepth import (
    dfs_elimination_forest,
    legacy_exact_treedepth,
)
from repro.decomposition.treedepth_engine import (
    TreedepthEngine,
    compute_treedepth,
    engine_elimination_forest,
    engine_treedepth,
    recognized_treedepth,
)
from repro.decomposition.width import (
    TREEDEPTH_EXACT_SIZE_LIMIT,
    graph_elimination_forest,
    graph_treedepth,
    width_profile,
)
from repro.exceptions import DecompositionError
from repro.graphlib.graph import Graph
from repro.structures.builders import (
    clique_graph,
    complete_binary_tree_graph,
    cycle,
    cycle_graph,
    directed_path,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.structures.gaifman import gaifman_graph
from repro.structures.random_gen import random_graph_structure, random_tree_graph

FUZZ_SEED = 74207281


def random_small_graphs(count):
    """Yield (name, graph) pairs covering sizes 1–12 and densities 0.1–0.8."""
    rng = random.Random(FUZZ_SEED)
    for index in range(count):
        n = rng.randint(1, 12)
        p = rng.uniform(0.1, 0.8)
        structure = random_graph_structure(n, p, seed=FUZZ_SEED + index)
        yield f"G(n={n}, p={p:.2f}, #{index})", gaifman_graph(structure)


class TestDifferentialFuzz:
    def test_engine_matches_legacy_on_120_random_graphs(self):
        for name, graph in random_small_graphs(120):
            result = compute_treedepth(graph)
            assert result.value == legacy_exact_treedepth(graph), name
            assert result.forest.witnesses(graph), name
            assert result.forest.height() == result.value, name

    def test_engine_matches_legacy_on_random_trees(self):
        for index in range(20):
            graph = gaifman_graph(
                graph_structure(random_tree_graph(12, seed=FUZZ_SEED + index))
            )
            assert engine_treedepth(graph) == legacy_exact_treedepth(graph)


class TestKnownValues:
    @pytest.mark.parametrize("n", list(range(1, 26)))
    def test_paths(self, n):
        assert engine_treedepth(path_graph(n)) == math.ceil(math.log2(n + 1))

    @pytest.mark.parametrize("n", list(range(3, 26)))
    def test_cycles(self, n):
        assert engine_treedepth(cycle_graph(n)) == 1 + math.ceil(math.log2(n))

    @pytest.mark.parametrize("n", list(range(1, 17)))
    def test_cliques(self, n):
        assert engine_treedepth(clique_graph(n)) == n

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_complete_binary_trees(self, k):
        # complete_binary_tree_graph(k) has k+1 levels (strings of length ≤ k).
        assert engine_treedepth(complete_binary_tree_graph(k)) == k + 1

    def test_star(self):
        assert engine_treedepth(star_graph(10)) == 2

    def test_grids(self):
        # Exact values small enough to cross-check against the seed.
        assert engine_treedepth(grid_graph(2, 3)) == legacy_exact_treedepth(grid_graph(2, 3))
        assert engine_treedepth(grid_graph(3, 4)) == legacy_exact_treedepth(grid_graph(3, 4))

    def test_disconnected_graph_takes_component_maximum(self):
        graph = Graph(range(10), [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)])
        # Components: P3 (td 2), C3 (td 3), four isolated vertices (td 1).
        assert engine_treedepth(graph) == 3

    def test_empty_graph_rejected(self):
        with pytest.raises(DecompositionError):
            engine_treedepth(Graph())

    def test_edgeless_graph(self):
        assert engine_treedepth(Graph(range(5))) == 1


class TestWitnesses:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: cycle_graph(13),
            lambda: cycle_graph(25),
            lambda: path_graph(25),
            lambda: grid_graph(3, 5),
            lambda: grid_graph(4, 5),
            lambda: clique_graph(9),
            lambda: complete_binary_tree_graph(3),
            lambda: gaifman_graph(random_graph_structure(15, 0.3, seed=FUZZ_SEED)),
            lambda: gaifman_graph(random_graph_structure(18, 0.2, seed=FUZZ_SEED)),
        ],
    )
    def test_forest_witnesses_graph_and_value(self, build):
        graph = build()
        result = compute_treedepth(graph)
        assert result.forest.witnesses(graph)
        assert result.forest.height() == result.value

    def test_engine_elimination_forest_is_optimal(self):
        graph = cycle_graph(13)
        forest = engine_elimination_forest(graph)
        assert forest.witnesses(graph)
        assert forest.height() == 5
        # Strictly better than the DFS heuristic, which gives 13 here.
        assert forest.height() < dfs_elimination_forest(graph).height()

    def test_engine_reports_search_statistics(self):
        result = compute_treedepth(grid_graph(3, 4))
        assert result.subproblems > 0
        # Grids are not a recognised shape, so some branching happened.
        assert result.branched > 0

    def test_recognised_shapes_skip_branching(self):
        for build in (lambda: cycle_graph(21), lambda: path_graph(24)):
            graph = build()
            engine = TreedepthEngine(graph)
            engine.run()
            assert engine.branched == 0


class TestRecognizedShapes:
    def test_paths_cycles_cliques_at_any_size(self):
        assert recognized_treedepth(path_graph(40)) == math.ceil(math.log2(41))
        assert recognized_treedepth(cycle_graph(40)) == 1 + math.ceil(math.log2(40))
        assert recognized_treedepth(clique_graph(30)) == 30
        assert recognized_treedepth(grid_graph(3, 10)) is None

    def test_disconnected_recognition_takes_maximum(self):
        graph = Graph(range(8), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 7)])
        # C3 (td 3) plus P5 (td 3).
        assert recognized_treedepth(graph) == 3

    def test_unrecognised_component_defeats_recognition(self):
        graph = Graph(range(5), [(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)])
        assert recognized_treedepth(graph) is None


class TestFacadeWiring:
    def test_facade_is_exact_in_the_13_to_25_window(self):
        assert TREEDEPTH_EXACT_SIZE_LIMIT == 25
        assert graph_treedepth(cycle_graph(13)) == 5
        assert graph_treedepth(cycle_graph(25)) == 6
        assert graph_treedepth(grid_graph(4, 5)) == 8

    def test_facade_is_exact_for_recognised_shapes_beyond_the_window(self):
        assert graph_treedepth(path_graph(30)) == 5
        assert graph_treedepth(cycle_graph(31)) == 6

    def test_facade_falls_back_to_heuristic_beyond_the_window(self):
        graph = grid_graph(5, 6)  # 30 vertices, not a recognised shape
        value = graph_treedepth(graph)
        exact = graph_treedepth(graph, exact=True)
        assert value >= exact

    def test_facade_forest_matches_facade_value(self):
        for build in (lambda: cycle_graph(13), lambda: path_graph(30), lambda: grid_graph(5, 6)):
            graph = build()
            forest = graph_elimination_forest(graph)
            assert forest.witnesses(graph)
            assert forest.height() == graph_treedepth(graph)

    def test_width_profile_uses_engine_treedepth(self):
        _, _, td = width_profile(cycle(13))
        assert td == 5

    def test_classify_structure_reports_exact_depth_for_big_rigid_cores(self):
        profile = classify_structure(cycle(13))
        assert profile.core_treedepth == 5
        assert profile.core_elimination_forest is not None
        assert profile.core_elimination_forest.height() == 5

        profile = classify_structure(directed_path(30))
        assert profile.core_treedepth == 5

    def test_profile_forest_witnesses_core_gaifman_graph(self):
        profile = classify_structure(cycle(15))
        assert profile.core_elimination_forest.witnesses(gaifman_graph(profile.core))
