"""Tests for the machine substrate: Turing machines, jump machines,
alternating machines, configuration graphs and the hash family."""

import pytest

from repro.exceptions import MachineError, ResourceExceededError
from repro.machines import (
    BLANK,
    Configuration,
    JumpMachine,
    TuringMachine,
    alternating_both_bits_machine,
    at_least_k_ones_machine,
    build_alternating_configuration_graph,
    build_jump_configuration_graph,
    contains_one_machine,
    family_parameters,
    find_injective_pair,
    hash_value,
    injective_fraction,
    is_prime,
    prime_bound,
    primes_below,
    substring_machine,
)


def _counter_machine() -> TuringMachine:
    """A tiny deterministic machine that writes two symbols then accepts."""
    transitions = {}
    for symbol in ("0", "1", "<", ">"):
        transitions[("start", symbol, BLANK)] = ("second", "x", 0, 1)
        transitions[("second", symbol, BLANK)] = ("accept", "y", 0, 0)
    return TuringMachine(
        states={"start", "second", "accept", "reject"},
        transitions=transitions,
        start_state="start",
        accept_state="accept",
        reject_state="reject",
    )


class TestTuringMachine:
    def test_deterministic_run_and_space(self):
        machine = _counter_machine()
        result = machine.run("01")
        assert result.status == "accept"
        assert result.max_space == 2
        assert result.steps == 2

    def test_space_budget_enforced(self):
        machine = _counter_machine()
        with pytest.raises(ResourceExceededError):
            machine.run("01", max_space=1)

    def test_missing_transition_rejects(self):
        machine = TuringMachine(
            states={"start", "accept", "reject"},
            transitions={},
            start_state="start",
            accept_state="accept",
            reject_state="reject",
        )
        assert machine.run("0").status == "reject"

    def test_invalid_specifications_rejected(self):
        with pytest.raises(MachineError):
            TuringMachine({"a"}, {}, "a", "missing_accept", "a")
        with pytest.raises(MachineError):
            TuringMachine(
                {"a", "b", "c"},
                {("a", "0", BLANK): ("b", "x", 2, 0)},
                "a",
                "b",
                "c",
            )

    def test_configuration_helpers(self):
        configuration = Configuration("q", 0, ("x", BLANK, "y"), 1)
        assert configuration.work_symbol() == BLANK
        tape, position = configuration.write_work("z", 1)
        assert tape[1] == "z" and position == 2
        assert configuration.with_state("r").state == "r"


class TestJumpMachines:
    @pytest.mark.parametrize(
        "text,expected",
        [("1011", True), ("1000", False), ("111", True), ("0000", False), ("", False)],
    )
    def test_at_least_k_ones(self, text, expected):
        assert at_least_k_ones_machine(3).accepts(text) is expected

    @pytest.mark.parametrize(
        "text,expected", [("000", False), ("010", True), ("1", True), ("", False)]
    )
    def test_contains_one(self, text, expected):
        assert contains_one_machine(2).accepts(text) is expected

    @pytest.mark.parametrize(
        "text,expected",
        [("00101", True), ("0110", False), ("101", True), ("11011", True), ("1100", False)],
    )
    def test_substring(self, text, expected):
        assert substring_machine("101").accepts(text) is expected

    def test_injective_versus_plain_jumps(self):
        """Injectivity is exactly what separates "k ones" from "some one"."""
        assert not at_least_k_ones_machine(2).accepts("10")
        assert contains_one_machine(2).accepts("10")

    def test_accepting_run_statistics(self):
        machine = at_least_k_ones_machine(2)
        statistics = machine.run("0101")
        assert statistics.accepted
        assert statistics.jumps_used == 2
        assert len(set(statistics.jump_targets)) == 2
        assert statistics.max_space <= 4

    def test_path_resource_profile(self):
        machine = at_least_k_ones_machine(2)
        assert machine.respects_path_resources("010101", parameter=2)

    def test_jump_state_must_be_special(self):
        base = _counter_machine()
        with pytest.raises(MachineError):
            JumpMachine(base, "start", max_jumps=1)


class TestAlternatingMachines:
    @pytest.mark.parametrize(
        "text,expected",
        [("01", True), ("10", True), ("0011", True), ("000", False), ("111", False)],
    )
    def test_both_bits(self, text, expected):
        assert alternating_both_bits_machine(2).accepts(text) is expected

    def test_round_budgets_respected(self):
        machine = alternating_both_bits_machine(3)
        statistics = machine.run("0101")
        assert statistics.accepted
        assert statistics.max_jumps_on_a_branch <= 3
        assert statistics.max_universal_guesses_on_a_branch <= 3


class TestConfigurationGraphs:
    def test_jump_graph_levels(self):
        machine = contains_one_machine(2)
        graph = build_jump_configuration_graph(machine, "0100")
        assert len(graph.levels) == machine.max_jumps + 1
        assert graph.levels[0][0] == machine.machine.initial_configuration()
        assert graph.accepts_within_levels() == machine.accepts("0100")

    def test_jump_graph_rejects_when_machine_rejects(self):
        machine = contains_one_machine(2)
        graph = build_jump_configuration_graph(machine, "0000")
        assert not any(level == machine.max_jumps for level, _ in graph.accepting)

    def test_alternating_graph_edges_carry_branch_bits(self):
        machine = alternating_both_bits_machine(2)
        graph = build_alternating_configuration_graph(machine, "01")
        bits = {bit for (_, _, bit, _) in graph.edges}
        assert bits == {0, 1}

    def test_alternating_graph_acceptance_only_at_leaves(self):
        machine = alternating_both_bits_machine(2)
        graph = build_alternating_configuration_graph(machine, "01")
        assert all(level == machine.max_jumps for level, _ in graph.accepting)


class TestHashFamily:
    def test_primes(self):
        assert [p for p in primes_below(20)] == [2, 3, 5, 7, 11, 13, 17, 19]
        assert is_prime(97) and not is_prime(91)

    def test_hash_values_in_range(self):
        k = 3
        for p, q in list(family_parameters(k, 32))[:20]:
            for m in range(1, 33):
                assert 0 <= hash_value(p, q, k, m) < k * k

    @pytest.mark.parametrize(
        "subset,n",
        [([3, 7, 9], 20), ([1, 2, 3, 4], 16), ([5, 11, 17, 23, 29], 32), ([2], 8)],
    )
    def test_injective_pair_exists(self, subset, n):
        """Lemma 3.14: some (p, q) with p < k² log n is injective on the subset."""
        pair = find_injective_pair(subset, n)
        assert pair is not None
        p, q = pair
        assert q < p < prime_bound(len(subset), n)
        k = len(subset)
        images = {hash_value(p, q, k, m) for m in subset}
        assert len(images) == len(subset)

    def test_injective_fraction_positive(self):
        assert injective_fraction([3, 9, 14], 16) > 0
