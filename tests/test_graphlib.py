"""Tests for the graph substrate (repro.graphlib)."""

import pytest

from repro.exceptions import StructureError
from repro.graphlib import (
    DiGraph,
    Graph,
    bfs_order,
    connected_components,
    dfs_order,
    is_acyclic,
    is_connected,
    is_cycle_graph,
    is_path_graph,
    is_tree,
    shortest_path,
    shortest_path_lengths,
)
from repro.structures import cycle_graph, grid_graph, path_graph, star_graph


class TestGraphBasics:
    def test_vertices_and_edges(self):
        graph = Graph([1, 2, 3], [(1, 2), (2, 3)])
        assert graph.number_of_vertices() == 3
        assert graph.number_of_edges() == 2
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
        assert not graph.has_edge(1, 3)

    def test_duplicate_edges_collapse(self):
        graph = Graph([1, 2], [(1, 2), (2, 1), (1, 2)])
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(StructureError):
            Graph([1], [(1, 1)])

    def test_edge_with_unknown_vertex_rejected(self):
        with pytest.raises(StructureError):
            Graph([1, 2], [(1, 3)])

    def test_neighbors_and_degree(self):
        graph = star_graph(4)
        assert graph.degree(0) == 4
        assert graph.neighbors(0) == frozenset({1, 2, 3, 4})
        assert graph.max_degree() == 4

    def test_is_regular(self):
        assert cycle_graph(5).is_regular()
        assert not star_graph(3).is_regular()

    def test_subgraph(self):
        graph = cycle_graph(5)
        sub = graph.subgraph({1, 2, 3})
        assert sub.number_of_edges() == 2
        with pytest.raises(StructureError):
            graph.subgraph({1, 99})

    def test_remove_vertex(self):
        graph = cycle_graph(4)
        smaller = graph.remove_vertex(1)
        assert 1 not in smaller
        assert smaller.number_of_edges() == 2

    def test_contract_edge(self):
        graph = path_graph(3)
        contracted = graph.contract_edge(1, 2)
        assert len(contracted) == 2
        assert contracted.has_edge(1, 3)
        with pytest.raises(StructureError):
            path_graph(3).contract_edge(1, 3)

    def test_relabel_and_equality(self):
        graph = path_graph(3)
        renamed = graph.relabel({1: "a", 2: "b", 3: "c"})
        assert renamed.has_edge("a", "b")
        assert graph == Graph([1, 2, 3], [(2, 3), (1, 2)])
        assert hash(graph) == hash(Graph([1, 2, 3], [(1, 2), (2, 3)]))

    def test_relabel_requires_injective(self):
        with pytest.raises(StructureError):
            path_graph(3).relabel({1: "a", 2: "a"})

    def test_union(self):
        left = Graph([1, 2], [(1, 2)])
        right = Graph([2, 3], [(2, 3)])
        union = left.union(right)
        assert union.number_of_edges() == 2
        assert len(union) == 3


class TestDiGraph:
    def test_arcs_and_successors(self):
        digraph = DiGraph([1, 2, 3], [(1, 2), (2, 3)])
        assert digraph.successors(1) == frozenset({2})
        assert digraph.predecessors(3) == frozenset({2})
        assert digraph.has_arc(1, 2) and not digraph.has_arc(2, 1)

    def test_loops_allowed_and_detected(self):
        digraph = DiGraph([1], [(1, 1)])
        assert digraph.has_loops()

    def test_underlying_graph_drops_loops(self):
        digraph = DiGraph([1, 2], [(1, 2), (1, 1)])
        graph = digraph.underlying_graph()
        assert graph.has_edge(1, 2)
        assert graph.number_of_edges() == 1

    def test_reverse(self):
        digraph = DiGraph([1, 2], [(1, 2)])
        assert digraph.reverse().has_arc(2, 1)


class TestTraversal:
    def test_bfs_covers_component(self):
        graph = cycle_graph(6)
        assert set(bfs_order(graph, 1)) == set(graph.vertices)

    def test_dfs_covers_component(self):
        graph = grid_graph(2, 3)
        assert set(dfs_order(graph, (0, 0))) == set(graph.vertices)

    def test_shortest_path_lengths(self):
        graph = path_graph(5)
        distances = shortest_path_lengths(graph, 1)
        assert distances[5] == 4 and distances[1] == 0

    def test_shortest_path_endpoints(self):
        graph = cycle_graph(6)
        route = shortest_path(graph, 1, 4)
        assert route is not None
        assert route[0] == 1 and route[-1] == 4 and len(route) == 4

    def test_shortest_path_unreachable(self):
        graph = Graph([1, 2, 3], [(1, 2)])
        assert shortest_path(graph, 1, 3) is None


class TestPredicates:
    def test_connected_components(self):
        graph = Graph([1, 2, 3, 4], [(1, 2), (3, 4)])
        components = connected_components(graph)
        assert len(components) == 2
        assert frozenset({1, 2}) in components and frozenset({3, 4}) in components

    def test_is_connected(self):
        assert is_connected(cycle_graph(4))
        assert not is_connected(Graph([1, 2, 3], [(1, 2)]))

    def test_is_tree_path_cycle(self):
        assert is_tree(path_graph(4)) and is_path_graph(path_graph(4))
        assert is_tree(star_graph(5)) and not is_path_graph(star_graph(5))
        assert is_cycle_graph(cycle_graph(5)) and not is_tree(cycle_graph(5))
        assert not is_cycle_graph(path_graph(4))

    def test_is_acyclic(self):
        assert is_acyclic(Graph([1, 2, 3, 4], [(1, 2), (3, 4)]))
        assert not is_acyclic(cycle_graph(3))

    def test_single_vertex_is_path_and_tree(self):
        single = Graph([1])
        assert is_tree(single) and is_path_graph(single)
        assert not is_tree(Graph())
