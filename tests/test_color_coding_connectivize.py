"""Tests for the colour-coding reduction (Lemma 3.15) and the connectivizations
used by Theorems 3.13 and 5.6."""

import pytest

from repro.exceptions import ReductionError
from repro.homomorphism import find_embedding, has_embedding, has_homomorphism
from repro.reductions import (
    AUX_RELATION,
    ColorCodingReduction,
    EmbInstance,
    TreeDepthConnectivization,
    TreewidthConnectivization,
    connectivize_by_treedepth,
    connectivize_by_treewidth,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    cycle,
    gaifman_graph,
    is_connected_structure,
    path,
    random_graph_structure,
    star_expansion,
)
from repro.graphlib import is_connected


DISCONNECTED = Structure(
    GRAPH_VOCABULARY, [1, 2, 3, 4], {"E": [(1, 2), (2, 1), (3, 4), (4, 3)]}
)


class TestColorCoding:
    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_bruteforce_small(self, seed):
        instance = EmbInstance(path(3), random_graph_structure(5, 0.4, seed))
        assert ColorCodingReduction().agrees_with_bruteforce(instance)

    @pytest.mark.parametrize("seed", range(3))
    def test_cycle_patterns(self, seed):
        instance = EmbInstance(cycle(3), random_graph_structure(5, 0.5, seed))
        assert ColorCodingReduction().agrees_with_bruteforce(instance)

    def test_blocks_are_sound(self):
        """Any homomorphism from A* into a block yields an embedding of A."""
        pattern = path(3)
        target = random_graph_structure(6, 0.5, 11)
        reduction = ColorCodingReduction()
        pattern_star = star_expansion(pattern)
        checked = 0
        for _, block in reduction.blocks(EmbInstance(pattern, target)):
            mapping = None
            from repro.homomorphism import find_homomorphism

            mapping = find_homomorphism(pattern_star, block)
            if mapping is not None:
                restricted = {a: mapping[a] for a in pattern.universe}
                assert len(set(restricted.values())) == len(pattern)
            checked += 1
            if checked >= 50:
                break

    def test_witness_block_accepts_known_embedding(self):
        pattern = cycle(3)
        target = cycle(3)
        embedding = find_embedding(pattern, target)
        assert embedding is not None
        reduction = ColorCodingReduction()
        block = reduction.witness_block(EmbInstance(pattern, target), embedding)
        assert has_homomorphism(star_expansion(pattern), block)

    def test_materialize_requires_connected_pattern(self):
        with pytest.raises(ReductionError):
            ColorCodingReduction(max_blocks=5).materialize(
                EmbInstance(DISCONNECTED, random_graph_structure(4, 0.5, 0)), 5
            )

    def test_materialized_instance_parameter_bound(self):
        reduction = ColorCodingReduction(max_blocks=3)
        instance = EmbInstance(path(2), random_graph_structure(3, 0.5, 0))
        reduced = reduction.apply(instance)
        assert reduced.parameter() <= reduction.parameter_bound(instance.parameter())


class TestConnectivization:
    @pytest.mark.parametrize("seed", range(4))
    def test_treedepth_connectivization_preserves_embeddings(self, seed):
        target = random_graph_structure(5, 0.6, seed)
        instance = EmbInstance(DISCONNECTED, target)
        connectivized = connectivize_by_treedepth(instance)
        assert is_connected_structure(connectivized.pattern)
        assert has_embedding(DISCONNECTED, target) == has_embedding(
            connectivized.pattern, connectivized.target
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_treewidth_connectivization_preserves_embeddings(self, seed):
        target = random_graph_structure(5, 0.6, seed)
        instance = EmbInstance(DISCONNECTED, target)
        connectivized = connectivize_by_treewidth(instance)
        assert is_connected_structure(connectivized.pattern)
        assert has_embedding(DISCONNECTED, target) == has_embedding(
            connectivized.pattern, connectivized.target
        )

    def test_treedepth_grows_by_at_most_one(self):
        from repro.decomposition import graph_treedepth

        instance = EmbInstance(DISCONNECTED, random_graph_structure(5, 0.5, 0))
        connectivized = connectivize_by_treedepth(instance)
        before = graph_treedepth(gaifman_graph(DISCONNECTED))
        after = graph_treedepth(gaifman_graph(connectivized.pattern))
        assert after <= before + 1

    def test_treewidth_grows_by_at_most_one(self):
        from repro.decomposition import graph_treewidth

        instance = EmbInstance(DISCONNECTED, random_graph_structure(5, 0.5, 1))
        connectivized = connectivize_by_treewidth(instance)
        before = graph_treewidth(gaifman_graph(DISCONNECTED))
        after = graph_treewidth(gaifman_graph(connectivized.pattern))
        assert after <= before + 1

    def test_aux_relation_added_once(self):
        instance = EmbInstance(DISCONNECTED, random_graph_structure(4, 0.5, 2))
        connectivized = connectivize_by_treedepth(instance)
        assert AUX_RELATION in connectivized.pattern.vocabulary
        with pytest.raises(ReductionError):
            connectivize_by_treedepth(
                EmbInstance(connectivized.pattern, connectivized.target)
            )

    def test_reduction_objects_expose_parameter_bounds(self):
        instance = EmbInstance(DISCONNECTED, random_graph_structure(4, 0.5, 3))
        for reduction in (TreeDepthConnectivization(), TreewidthConnectivization()):
            reduced = reduction.apply(instance)
            assert reduced.parameter() <= reduction.parameter_bound(instance.parameter())

    def test_already_connected_pattern_stays_equivalent(self):
        pattern = cycle(5)
        target = random_graph_structure(6, 0.5, 4)
        instance = EmbInstance(pattern, target)
        connectivized = connectivize_by_treewidth(instance)
        assert has_embedding(pattern, target) == has_embedding(
            connectivized.pattern, connectivized.target
        )
