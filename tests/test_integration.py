"""End-to-end integration tests: the paper's pipeline exercised as a user would."""

import pytest

from repro.classification import ComplexityDegree, classify_family, solve_hom
from repro.counting import count_hom, count_star_homomorphisms_via_oracle
from repro.cq import Database, parse_query
from repro.homomorphism import count_homomorphisms, has_homomorphism
from repro.machines import alternating_both_bits_machine, contains_one_machine
from repro.reductions import (
    HomInstance,
    ReductionLemmaChain,
    machine_acceptance_to_hom_path,
    machine_acceptance_to_hom_tree,
    reduce_with_decomposition,
)
from repro.decomposition import optimal_tree_decomposition
from repro.structures import (
    cycle,
    path,
    path_graph,
    random_graph_structure,
    star_expansion,
)
from repro.workloads import family_by_name
from tests.conftest import colored_target_for


class TestDatabaseScenario:
    """A miniature "social network" database queried with CQs of all three degrees."""

    @pytest.fixture
    def friends(self):
        edges = [
            (1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3),
            (4, 5), (5, 4), (5, 1), (1, 5), (2, 5), (5, 2),
        ]
        return Database({"E": edges})

    def test_star_query(self, friends):
        query = parse_query("E(c, x), E(c, y), E(c, z)")
        assert query.holds_on(friends)
        assert query.classify().core_treedepth <= 2

    def test_path_and_triangle_queries(self, friends):
        path_query = parse_query("E(a, b), E(b, c), E(c, d)")
        triangle_query = parse_query("E(x, y), E(y, z), E(z, x)")
        assert path_query.holds_on(friends)
        assert triangle_query.holds_on(friends)

    def test_degree_aware_solving_agrees_with_query_semantics(self, friends):
        query = parse_query("E(a, b), E(b, c), E(c, d), E(d, e)")
        target = friends.to_structure(query.vocabulary())
        result = solve_hom(query.canonical_structure(), target)
        assert result.answer == query.holds_on(friends)


class TestClassificationPipeline:
    def test_three_degrees_surface_on_canonical_families(self):
        degrees = {
            "stars": ComplexityDegree.PARA_L,
            "starred_paths": ComplexityDegree.PATH_COMPLETE,
            "starred_binary_trees": ComplexityDegree.TREE_COMPLETE,
        }
        for name, expected in degrees.items():
            count = 7 if name == "starred_paths" else 4
            assert classify_family(family_by_name(name, count)).degree == expected

    def test_classification_drives_the_right_solver(self):
        pattern = star_expansion(path(5))
        target = colored_target_for(pattern, 5, 0.6, 3)
        result = solve_hom(pattern, target)
        assert result.answer == has_homomorphism(pattern, target)
        assert "Lemma 3.3" in result.solver or "Theorem 4.6" in result.solver


class TestHardnessPipeline:
    def test_machine_worlds_and_homomorphism_worlds_agree(self):
        jump_machine = contains_one_machine(2)
        alternating_machine = alternating_both_bits_machine(2)
        for text in ("0101", "0001", "1111", "0000"):
            path_instance = machine_acceptance_to_hom_path(jump_machine, text)
            tree_instance = machine_acceptance_to_hom_tree(alternating_machine, text)
            assert jump_machine.accepts(text) == has_homomorphism(
                path_instance.pattern, path_instance.target
            )
            assert alternating_machine.accepts(text) == has_homomorphism(
                tree_instance.pattern, tree_instance.target
            )

    def test_hardness_transfer_through_the_reduction_lemma(self):
        """p-HOM(P_3*) reduces into p-HOM({C_5}) because P_3 is a minor of C_5."""
        chain = ReductionLemmaChain(cycle(5), path_graph(3))
        pattern_star = star_expansion(path(3))
        for seed in range(3):
            target = colored_target_for(pattern_star, 4, 0.5, seed)
            instance = HomInstance(pattern_star, target)
            transferred = chain.apply(instance)
            assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
                transferred.pattern, transferred.target
            )


class TestMembershipPipeline:
    def test_lemma_34_then_dp_solves_bounded_treewidth_queries(self):
        pattern = cycle(4)
        target = random_graph_structure(6, 0.5, 5)
        instance = HomInstance(pattern, target)
        reduced = reduce_with_decomposition(instance, optimal_tree_decomposition(pattern))
        assert has_homomorphism(reduced.pattern, reduced.target) == has_homomorphism(
            pattern, target
        )

    def test_counting_pipeline(self):
        pattern = path(3)
        target = random_graph_structure(5, 0.5, 7)
        direct = count_homomorphisms(pattern, target)
        assert count_hom(pattern, target).count == direct
        starred = star_expansion(pattern)
        colored = colored_target_for(starred, 5, 0.5, 7)
        assert count_star_homomorphisms_via_oracle(starred, colored) == count_homomorphisms(
            starred, colored
        )
