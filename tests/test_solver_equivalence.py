"""Property-based cross-solver equivalence harness.

Generates random query/database pairs (via :mod:`repro.structures.random_gen`)
and asserts that every solver in the library — generic backtracking, the
legacy product-based decomposition DP, the tree-depth recursion, and the
semiring join engine — agrees on homomorphism *existence* and on the exact
*count*.  This is the safety net that lets the hot paths be rewritten
freely: any divergence between an optimised solver and the ground truth
shows up here with a reproducible seed.
"""

from __future__ import annotations

import random

import pytest

from repro.decomposition.width import (
    good_path_decomposition,
    good_tree_decomposition,
)
from repro.homomorphism.backtracking import (
    count_homomorphisms,
    has_homomorphism,
)
from repro.homomorphism.decomposition_solver import (
    legacy_count_homomorphisms_td,
    legacy_homomorphism_exists_pd,
)
from repro.homomorphism.join_engine import (
    BOOLEAN,
    COUNTING,
    run_decomposition_dp,
    run_path_sweep,
)
from repro.homomorphism.treedepth_solver import (
    count_homomorphisms_treedepth,
    homomorphism_exists_treedepth,
)
from repro.structures import (
    Vocabulary,
    random_graph_structure,
    random_structure,
)

#: Seeds × pairs-per-seed = 36 × 3 = 108 random query/database pairs, on
#: top of the mixed-vocabulary cases below — comfortably over the hundred
#: pairs the harness promises.
SEEDS = range(36)
PAIRS_PER_SEED = 3

MIXED_VOCABULARY = Vocabulary({"E": 2, "C": 1})


def _random_pair(rng: random.Random):
    """Return one random (pattern, target) pair of modest size."""
    if rng.random() < 0.25:
        pattern = random_structure(
            MIXED_VOCABULARY, rng.randint(2, 4), rng.randint(1, 4), rng
        )
        target = random_structure(
            MIXED_VOCABULARY, rng.randint(2, 5), rng.randint(2, 8), rng
        )
    else:
        pattern = random_graph_structure(
            rng.randint(2, 4), rng.uniform(0.2, 0.9), rng
        )
        target = random_graph_structure(
            rng.randint(2, 5), rng.uniform(0.2, 0.9), rng
        )
    return pattern, target


def _assert_all_solvers_agree(pattern, target, context: str) -> None:
    """Assert existence and counts coincide across all four solver families."""
    expected_count = count_homomorphisms(pattern, target)
    expected_exists = has_homomorphism(pattern, target)
    assert expected_exists == (expected_count > 0), context

    tree_decomposition = good_tree_decomposition(pattern)
    path_decomposition = good_path_decomposition(pattern)

    # 1. Legacy product-based decomposition DP (the seed implementation).
    assert (
        legacy_count_homomorphisms_td(pattern, target, tree_decomposition)
        == expected_count
    ), context
    assert (
        legacy_homomorphism_exists_pd(pattern, target, path_decomposition)
        == expected_exists
    ), context

    # 2. Tree-depth recursion (Lemma 3.3 / Theorem 6.1(3)).
    assert homomorphism_exists_treedepth(pattern, target) == expected_exists, context
    assert count_homomorphisms_treedepth(pattern, target) == expected_count, context

    # 3. Semiring join engine, tree DP and rolling path sweep.
    assert (
        run_decomposition_dp(pattern, target, tree_decomposition, COUNTING)
        == expected_count
    ), context
    assert (
        bool(run_decomposition_dp(pattern, target, tree_decomposition, BOOLEAN))
        == expected_exists
    ), context
    assert (
        run_path_sweep(pattern, target, path_decomposition, COUNTING)
        == expected_count
    ), context
    assert (
        bool(run_path_sweep(pattern, target, path_decomposition, BOOLEAN))
        == expected_exists
    ), context


@pytest.mark.parametrize("seed", SEEDS)
def test_random_query_database_pairs_agree(seed):
    rng = random.Random(20130625 + seed)
    for pair_index in range(PAIRS_PER_SEED):
        pattern, target = _random_pair(rng)
        context = f"seed={seed} pair={pair_index} pattern={pattern!r} target={target!r}"
        _assert_all_solvers_agree(pattern, target, context)


@pytest.mark.parametrize("seed", range(6))
def test_planted_yes_instances_agree(seed):
    """Targets with a planted pattern copy: existence is guaranteed, counts must match."""
    from repro.structures import planted_homomorphism_target

    rng = random.Random(seed)
    pattern = random_graph_structure(rng.randint(2, 4), 0.7, rng)
    target = planted_homomorphism_target(pattern, rng.randint(4, 6), 3, rng)
    context = f"planted seed={seed}"
    assert has_homomorphism(pattern, target), context
    _assert_all_solvers_agree(pattern, target, context)


@pytest.mark.parametrize("seed", range(4))
def test_sparse_no_instances_agree(seed):
    """Dense patterns against sparse targets: mostly no-instances, all solvers say so."""
    rng = random.Random(1000 + seed)
    pattern = random_graph_structure(4, 0.9, rng)
    target = random_graph_structure(5, 0.1, rng)
    _assert_all_solvers_agree(pattern, target, f"sparse seed={seed}")
