"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.decomposition import (
    TreeDecomposition,
    exact_pathwidth,
    exact_treedepth,
    exact_treewidth,
    exact_elimination_forest,
    min_fill_ordering,
    optimal_path_decomposition,
    optimal_tree_decomposition,
    ordering_width,
    path_decomposition_from_ordering,
)
from repro.graphlib import Graph, connected_components
from repro.homomorphism import (
    core,
    count_homomorphisms,
    count_homomorphisms_td,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphism_exists_pd,
    homomorphism_exists_treedepth,
    is_homomorphism,
)
from repro.logic import model_check, canonical_query, treedepth_sentence
from repro.structures import (
    are_isomorphic,
    decode_structure,
    encode_structure,
    gaifman_graph,
    graph_structure,
    star_expansion,
    strip_star_expansion,
)

# ---------------------------------------------------------------------------
# graph strategies
# ---------------------------------------------------------------------------

MAX_VERTICES = 7


@st.composite
def small_graphs(draw, min_vertices: int = 1, max_vertices: int = MAX_VERTICES):
    """Random simple graphs on at most MAX_VERTICES vertices."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    vertices = list(range(n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True) if possible else st.just([]))
    return Graph(vertices, edges)


@st.composite
def small_graphs_with_edges(draw):
    """Random graphs guaranteed to have at least one edge."""
    graph = draw(small_graphs(min_vertices=2))
    if graph.number_of_edges() == 0:
        vertices = sorted(graph.vertices)
        graph = Graph(vertices, [(vertices[0], vertices[1])])
    return graph


# ---------------------------------------------------------------------------
# width-measure invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_width_inequalities_hold(graph):
    """tw ≤ pw ≤ td − 1 for every non-empty graph (Section 2.2)."""
    if len(graph) == 0:
        return
    tw = exact_treewidth(graph)
    pw = exact_pathwidth(graph)
    td = exact_treedepth(graph)
    assert tw <= pw <= td - 1
    assert td <= len(graph)


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_elimination_forest_witnesses_treedepth(graph):
    if len(graph) == 0:
        return
    forest = exact_elimination_forest(graph)
    assert forest.witnesses(graph)
    assert forest.height() == exact_treedepth(graph)


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_min_fill_is_a_valid_upper_bound(graph):
    if len(graph) == 0:
        return
    ordering = min_fill_ordering(graph)
    width = ordering_width(graph, ordering)
    assert width >= exact_treewidth(graph)
    decomposition = TreeDecomposition.from_elimination_ordering(graph, ordering)
    decomposition.validate(graph)
    assert decomposition.width() == width


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_path_decomposition_from_any_ordering_is_valid(graph):
    if len(graph) == 0:
        return
    ordering = sorted(graph.vertices)
    decomposition = path_decomposition_from_ordering(graph, ordering)
    decomposition.validate(graph)
    assert decomposition.width() >= exact_pathwidth(graph)


@settings(max_examples=25, deadline=None)
@given(small_graphs())
def test_treedepth_at_most_one_plus_subgraph(graph):
    """Removing a vertex decreases tree depth by at most one (per component)."""
    if len(graph) <= 1:
        return
    td = exact_treedepth(graph)
    vertex = sorted(graph.vertices)[0]
    smaller = graph.remove_vertex(vertex)
    if len(smaller) == 0:
        return
    td_smaller = max(
        exact_treedepth(graph.subgraph(component))
        for component in connected_components(smaller)
    )
    assert td_smaller <= td <= td_smaller + 1


# ---------------------------------------------------------------------------
# structure / encoding invariants
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(small_graphs_with_edges())
def test_encoding_roundtrip(graph):
    structure = graph_structure(graph)
    assert are_isomorphic(structure, decode_structure(encode_structure(structure)))


@settings(max_examples=30, deadline=None)
@given(small_graphs_with_edges())
def test_star_expansion_roundtrip_and_core(graph):
    structure = graph_structure(graph)
    starred = star_expansion(structure)
    assert strip_star_expansion(starred) == structure
    # Star expansions are cores (Example 2.1): the computed core is everything.
    assert len(core(starred)) == len(structure)


@settings(max_examples=25, deadline=None)
@given(small_graphs_with_edges())
def test_gaifman_graph_of_graph_structure_is_the_graph(graph):
    assert gaifman_graph(graph_structure(graph)) == graph


# ---------------------------------------------------------------------------
# homomorphism invariants
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(small_graphs_with_edges(), small_graphs_with_edges())
def test_specialised_solvers_agree_with_bruteforce(pattern_graph, target_graph):
    pattern = graph_structure(pattern_graph)
    target = graph_structure(target_graph)
    expected = has_homomorphism(pattern, target)
    decomposition = optimal_tree_decomposition(pattern)
    assert (count_homomorphisms_td(pattern, target, decomposition) > 0) == expected
    assert homomorphism_exists_pd(pattern, target, optimal_path_decomposition(pattern)) == expected
    assert homomorphism_exists_treedepth(pattern, target) == expected


@settings(max_examples=25, deadline=None)
@given(small_graphs_with_edges(), small_graphs_with_edges())
def test_dp_counting_matches_bruteforce(pattern_graph, target_graph):
    pattern = graph_structure(pattern_graph)
    target = graph_structure(target_graph)
    decomposition = optimal_tree_decomposition(pattern)
    assert count_homomorphisms_td(pattern, target, decomposition) == count_homomorphisms(
        pattern, target
    )


@settings(max_examples=20, deadline=None)
@given(small_graphs_with_edges())
def test_core_is_homomorphically_equivalent_and_minimal(graph):
    structure = graph_structure(graph)
    core_structure = core(structure)
    assert homomorphically_equivalent(structure, core_structure)
    # The core of the core is the core itself (idempotence up to isomorphism).
    assert len(core(core_structure)) == len(core_structure)


@settings(max_examples=20, deadline=None)
@given(small_graphs_with_edges(), small_graphs_with_edges())
def test_homomorphism_composition_closure(left_graph, right_graph):
    """If hom(A→B) and hom(B→C) exist then hom(A→C) exists."""
    a = graph_structure(left_graph)
    b = graph_structure(right_graph)
    from repro.structures import cycle

    c = cycle(3)
    if has_homomorphism(a, b) and has_homomorphism(b, c):
        assert has_homomorphism(a, c)


@settings(max_examples=20, deadline=None)
@given(small_graphs_with_edges(), small_graphs_with_edges())
def test_canonical_query_agrees_with_homomorphism(pattern_graph, target_graph):
    """Chandra–Merlin: B ⊨ φ_A  iff  hom(A → B)."""
    pattern = graph_structure(pattern_graph)
    target = graph_structure(target_graph)
    assert model_check(target, canonical_query(pattern)) == has_homomorphism(pattern, target)


@settings(max_examples=15, deadline=None)
@given(small_graphs_with_edges(), small_graphs_with_edges())
def test_treedepth_sentence_agrees_with_homomorphism(pattern_graph, target_graph):
    """Lemma 3.3: the tree-depth sentence of A is equivalent to hom(A → ·)."""
    pattern = graph_structure(pattern_graph)
    target = graph_structure(target_graph)
    sentence = treedepth_sentence(pattern)
    assert model_check(target, sentence) == has_homomorphism(pattern, target)
