"""Tests for the machine-to-homomorphism reductions (Theorems 4.3 and 5.5)."""

import pytest

from repro.graphlib import is_path_graph, is_tree
from repro.homomorphism import has_homomorphism
from repro.machines import (
    alternating_both_bits_machine,
    at_least_k_ones_machine,
    contains_one_machine,
    substring_machine,
)
from repro.reductions import (
    machine_acceptance_to_hom_path,
    machine_acceptance_to_hom_tree,
)
from repro.structures import strip_star_expansion, structure_graph


class TestTheorem43MachineToPath:
    @pytest.mark.parametrize(
        "text", ["0100", "000", "1", "0", "11010", "", "0110"]
    )
    def test_contains_one_agrees(self, text):
        machine = contains_one_machine(2)
        instance = machine_acceptance_to_hom_path(machine, text)
        assert machine.accepts(text) == has_homomorphism(instance.pattern, instance.target)

    @pytest.mark.parametrize("text", ["0101", "0010", "1100", "0000", "111"])
    def test_three_jump_machine_agrees(self, text):
        machine = contains_one_machine(3)
        instance = machine_acceptance_to_hom_path(machine, text)
        assert machine.accepts(text) == has_homomorphism(instance.pattern, instance.target)

    def test_injective_machines_rejected(self):
        from repro.exceptions import MachineError

        with pytest.raises(MachineError):
            machine_acceptance_to_hom_path(at_least_k_ones_machine(2), "0101")

    @pytest.mark.parametrize("text", ["00101", "0110", "101", "1001"])
    def test_substring_machine_agrees(self, text):
        machine = substring_machine("101")
        instance = machine_acceptance_to_hom_path(machine, text)
        assert machine.accepts(text) == has_homomorphism(instance.pattern, instance.target)

    def test_pattern_is_starred_path_with_machine_parameter(self):
        machine = contains_one_machine(3)
        instance = machine_acceptance_to_hom_path(machine, "010")
        stripped = strip_star_expansion(instance.pattern)
        assert is_path_graph(structure_graph(stripped))
        assert len(stripped) == machine.max_jumps + 1

    def test_parameter_independent_of_input_length(self):
        machine = contains_one_machine(2)
        small = machine_acceptance_to_hom_path(machine, "01")
        large = machine_acceptance_to_hom_path(machine, "01" * 8)
        assert small.pattern == large.pattern
        assert len(large.target) >= len(small.target)


class TestTheorem55MachineToTree:
    @pytest.mark.parametrize("text", ["01", "11", "00", "101", "0000", "10"])
    def test_both_bits_agrees(self, text):
        machine = alternating_both_bits_machine(2)
        instance = machine_acceptance_to_hom_tree(machine, text)
        assert machine.accepts(text) == has_homomorphism(instance.pattern, instance.target)

    @pytest.mark.parametrize("text", ["01", "000"])
    def test_three_round_machine(self, text):
        machine = alternating_both_bits_machine(3)
        instance = machine_acceptance_to_hom_tree(machine, text)
        assert machine.accepts(text) == has_homomorphism(instance.pattern, instance.target)

    def test_pattern_is_starred_binary_tree(self):
        machine = alternating_both_bits_machine(2)
        instance = machine_acceptance_to_hom_tree(machine, "01")
        stripped = strip_star_expansion(instance.pattern)
        assert is_tree(structure_graph(stripped))
        assert len(stripped) == 2 ** (machine.max_jumps + 1) - 1

    def test_tree_target_grows_with_input(self):
        machine = alternating_both_bits_machine(2)
        small = machine_acceptance_to_hom_tree(machine, "01")
        large = machine_acceptance_to_hom_tree(machine, "0101")
        assert small.pattern == large.pattern
        assert len(large.target) >= len(small.target)
