"""Tests for the Classification Theorem machinery (Theorem 3.1 as an API)."""

import pytest

from repro.classification import (
    ComplexityDegree,
    classify_family,
    classify_structure,
    classify_with_bounds,
    choose_degree,
    degree_from_width_bounds,
    looks_bounded,
    solve_hom,
)
from repro.exceptions import ClassificationError
from repro.structures import (
    cycle,
    grid,
    path,
    random_graph_structure,
    star,
    star_expansion,
)
from repro.workloads import EXPECTED_DEGREES, family_by_name
from repro.homomorphism import has_homomorphism


class TestDegreeTable:
    def test_theorem_31_case_analysis(self):
        assert degree_from_width_bounds(True, True, True) is ComplexityDegree.PARA_L
        assert degree_from_width_bounds(True, True, False) is ComplexityDegree.PATH_COMPLETE
        assert degree_from_width_bounds(True, False, False) is ComplexityDegree.TREE_COMPLETE
        assert degree_from_width_bounds(False, False, False) is ComplexityDegree.W1_HARD

    def test_metadata(self):
        assert "Theorem 3.1" in ComplexityDegree.PATH_COMPLETE.paper_statement()
        assert ComplexityDegree.PARA_L.rank() < ComplexityDegree.W1_HARD.rank()
        assert "p-HOM(P*)" in ComplexityDegree.PATH_COMPLETE.complete_problem()


class TestStructureProfiles:
    def test_triangle(self):
        profile = classify_structure(cycle(3))
        assert (profile.core_treewidth, profile.core_pathwidth, profile.core_treedepth) == (2, 2, 3)
        assert profile.core_size == 3

    def test_even_cycle_profile_uses_core(self):
        profile = classify_structure(cycle(6))
        assert profile.core_size == 2
        assert profile.core_treewidth == 1

    def test_starred_path_is_its_own_core(self):
        profile = classify_structure(star_expansion(path(5)))
        assert profile.core_size == 5
        assert profile.core_treedepth == 3


class TestLooksBounded:
    def test_constant_series(self):
        assert looks_bounded([2, 2, 2, 2, 2, 2])

    def test_growing_series(self):
        assert not looks_bounded([1, 2, 3, 4, 5, 6])

    def test_logarithmic_growth_detected_with_enough_scale(self):
        assert not looks_bounded([2, 2, 3, 3, 3, 3, 4, 4])

    def test_two_values_counts_as_bounded(self):
        assert looks_bounded([0, 1, 1, 1])

    def test_empty_series(self):
        assert looks_bounded([])


class TestFamilyClassification:
    @pytest.mark.parametrize(
        "name,count",
        [
            ("stars", 6),
            ("bounded_depth_trees", 5),
            ("grids", 4),
            ("directed_paths", 8),
            ("odd_cycles", 5),
            ("starred_paths", 7),
            ("b_structures", 4),
            ("directed_b_structures", 4),
            ("starred_binary_trees", 4),
            ("starred_grids", 4),
            ("cliques", 5),
        ],
    )
    def test_families_classified_as_expected(self, name, count):
        report = classify_family(family_by_name(name, count))
        assert report.degree == EXPECTED_DEGREES[name], report.summary()

    def test_empty_sample_rejected(self):
        with pytest.raises(ClassificationError):
            classify_family([])

    def test_arity_bound_enforced(self):
        from repro.structures import Structure, Vocabulary

        wide = Structure(Vocabulary({"R": 4}), [1, 2, 3, 4], {"R": [(1, 2, 3, 4)]})
        with pytest.raises(ClassificationError):
            classify_family([wide], max_arity_bound=3)

    def test_classify_with_asserted_bounds(self):
        report = classify_with_bounds(True, True, False, sample=family_by_name("directed_paths", 3))
        assert report.degree is ComplexityDegree.PATH_COMPLETE
        assert "asserted" in report.notes

    def test_report_summary_mentions_degree(self):
        report = classify_family(family_by_name("stars", 4))
        assert "para-L" in report.summary()


class TestSolverDispatch:
    @pytest.mark.parametrize("seed", range(3))
    def test_para_l_route(self, seed):
        pattern = star(3)
        target = random_graph_structure(6, 0.4, seed)
        result = solve_hom(pattern, target)
        assert result.degree is ComplexityDegree.PARA_L
        assert result.answer == has_homomorphism(pattern, target)

    @pytest.mark.parametrize("seed", range(3))
    def test_path_route(self, seed):
        # A starred path long enough that its (core) tree depth exceeds the
        # dispatcher's para-L threshold.
        pattern = star_expansion(path(16))
        from tests.conftest import colored_target_for

        target = colored_target_for(pattern, 6, 0.5, seed)
        result = solve_hom(pattern, target)
        assert result.degree is ComplexityDegree.PATH_COMPLETE
        assert result.answer == has_homomorphism(pattern, target)

    @pytest.mark.parametrize("seed", range(2))
    def test_generic_route_on_high_treewidth(self, seed):
        pattern = star_expansion(grid(5, 5))
        from tests.conftest import colored_target_for

        target = colored_target_for(pattern, 6, 0.6, seed)
        result = solve_hom(pattern, target)
        assert result.degree is ComplexityDegree.W1_HARD
        assert result.answer == has_homomorphism(pattern, target)

    def test_choose_degree_thresholds(self):
        assert choose_degree(classify_structure(star(3))) is ComplexityDegree.PARA_L
        assert (
            choose_degree(classify_structure(star_expansion(grid(5, 5))))
            is ComplexityDegree.W1_HARD
        )
