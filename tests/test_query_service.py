"""Tests for the query-service front-end (:mod:`repro.service.frontend`)."""

import pytest

from repro.cq import evaluate_query_set_sequential
from repro.eval import ExecutorConfig
from repro.service import AdaptiveController, QueryService
from repro.workloads import scenario_by_name


def triples(results):
    return [(str(query), result.answer, result.solver) for query, result in results]


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=30, seed=17)


@pytest.fixture(scope="module")
def reference(scenario):
    return evaluate_query_set_sequential(scenario.queries, scenario.database)


class TestServing:
    def test_sequential_service_matches_reference(self, scenario, reference):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            results = service.evaluate(scenario.queries)
        assert triples(results) == triples(reference)

    def test_parallel_service_matches_reference(self, scenario, reference):
        config = ExecutorConfig(workers=2, chunk_size=5, min_parallel_batch=1)
        with QueryService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries, mode="parallel")
        assert triples(results) == triples(reference)

    def test_submit_flush_preserves_submission_order(self, scenario, reference):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            for query in scenario.queries:
                service.submit(query)
            assert service.stats()["pending"] == len(scenario.queries)
            results = service.flush()
            assert service.stats()["pending"] == 0
        assert triples(results) == triples(reference)

    def test_flush_splits_oversized_batches(self, scenario, reference):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), batch_size=7
        ) as service:
            results = service.evaluate(scenario.queries)
            stats = service.stats()
        assert triples(results) == triples(reference)
        # 30 queries at batch_size 7 → 5 batches, each recorded.
        assert stats["batches_served"] == 5
        assert [h["queries"] for h in stats["mode_history"]] == [7, 7, 7, 7, 2]

    def test_invalid_batch_size_rejected(self, scenario):
        with pytest.raises(ValueError):
            QueryService(scenario.database, batch_size=0)


class TestClassificationDedup:
    def test_one_classification_per_distinct_pattern_sequential(self, scenario):
        duplicated = list(scenario.queries) * 3
        distinct = len({q.canonical_structure() for q in duplicated})
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(duplicated)
            service.evaluate(duplicated)  # a second wave changes nothing
            stats = service.stats()
        assert stats["classification_calls"] == distinct
        assert stats["queries_served"] == 2 * len(duplicated)

    def test_one_classification_per_distinct_pattern_across_workers(self, scenario):
        duplicated = list(scenario.queries) * 2
        distinct = len({q.canonical_structure() for q in duplicated})
        config = ExecutorConfig(workers=2, chunk_size=4, min_parallel_batch=1)
        with QueryService(scenario.database, executor=config) as service:
            service.evaluate(duplicated, mode="parallel")
            stats = service.stats()
        assert stats["shared_stores"] is True
        assert stats["classification_calls"] <= distinct

    def test_answer_store_shares_solves_across_batches(self, scenario):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(scenario.queries)
            first = len(service.telemetry_samples())
            service.evaluate(scenario.queries)
            second = len(service.telemetry_samples())
        # The second wave hit the answer store / memo: no new solves.
        assert first > 0
        assert second == first


class TestUseCacheContract:
    def test_use_cache_false_bypasses_shared_stores(self, scenario):
        from repro.eval import EvalService
        from repro.service import ServiceStores, SharedStore

        stores = ServiceStores(
            profiles=SharedStore.local(), answers=SharedStore.local()
        )
        with EvalService(
            scenario.database, executor=ExecutorConfig(workers=1), stores=stores
        ) as service:
            service.evaluate(scenario.queries[:6], use_cache=False)
        # The promise of use_cache=False is batch-scoped sharing only:
        # nothing may touch (or be served from) the cross-call stores.
        assert stores.profiles.info()["computes"] == 0
        assert len(stores.answers) == 0


class TestStatsEndpoint:
    def test_stats_shape(self, scenario):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(scenario.queries[:5])
            stats = service.stats()
        for key in (
            "queries_served",
            "batches_served",
            "classification_calls",
            "stores",
            "controller",
            "mode_history",
            "calibration",
            "planner_mode",
        ):
            assert key in stats
        assert stats["calibration"] is None
        assert stats["planner_mode"] == "threshold"
        assert stats["controller"]["queries_observed"] == 5
        assert stats["mode_history"][0]["mode"] == "sequential"


class TestCalibrationLifecycle:
    def test_calibrate_applies_cost_mode_and_survives_restart(self, scenario, reference, tmp_path):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(scenario.queries)
            result = service.calibrate(min_samples=1)
            assert result.source == "fitted"
            assert service.planner.mode == "cost"
            assert service.stats()["calibration"]["source"] == "fitted"
            # Answers are unchanged under the calibrated planner.
            results = service.evaluate(scenario.queries)
            assert [r.answer for _, r in results] == [
                r.answer for _, r in reference
            ]
            path = str(tmp_path / "calibration.json")
            service.save_calibration(path)
        # A fresh service restarts straight into the calibrated state.
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), calibration=path
        ) as restarted:
            assert restarted.planner.mode == "cost"
            results = restarted.evaluate(scenario.queries[:8])
            assert [r.answer for _, r in results] == [
                r.answer for _, r in reference[:8]
            ]

    def test_save_without_calibration_raises(self, scenario, tmp_path):
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            with pytest.raises(ValueError):
                service.save_calibration(str(tmp_path / "nope.json"))

    def test_insufficient_samples_does_not_apply(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), telemetry=False
        ) as service:
            service.evaluate(scenario.queries[:3])
            result = service.calibrate()
            assert result.source == "insufficient-samples"
            assert service.planner.mode == "threshold"


class TestAdaptiveController:
    def make(self, **kwargs):
        defaults = dict(
            workers=4,
            chunk_size=10,
            spawn_overhead_seconds=0.01,
            min_parallel_batch=4,
            warmup_queries=8,
            drift_window=4,
            drift_factor=4.0,
        )
        defaults.update(kwargs)
        return AdaptiveController(**defaults)

    def test_warmup_batches_stay_sequential(self, monkeypatch):
        import repro.service.frontend as frontend

        monkeypatch.setattr(frontend.os, "cpu_count", lambda: 8)
        controller = self.make()
        mode, reason = controller.decide(100)
        assert mode == "sequential" and "warm-up" in reason

    def test_single_cpu_guard(self, monkeypatch):
        import repro.service.frontend as frontend

        monkeypatch.setattr(frontend.os, "cpu_count", lambda: 1)
        controller = self.make()
        controller.observe(1.0, 10, "sequential")
        mode, reason = controller.decide(100)
        assert mode == "sequential" and reason == "single CPU"

    def test_cheap_queries_stay_sequential_after_warmup(self, monkeypatch):
        import repro.service.frontend as frontend

        monkeypatch.setattr(frontend.os, "cpu_count", lambda: 8)
        controller = self.make()
        controller.observe(0.0001 * 20, 20, "sequential")  # 0.1ms/query
        mode, reason = controller.decide(100)
        assert mode == "sequential" and "below spawn overhead" in reason

    def test_expensive_queries_go_parallel(self, monkeypatch):
        import repro.service.frontend as frontend

        monkeypatch.setattr(frontend.os, "cpu_count", lambda: 8)
        controller = self.make()
        controller.observe(0.01 * 20, 20, "sequential")  # 10ms/query
        mode, reason = controller.decide(100)
        assert mode == "parallel" and "above spawn overhead" in reason

    def test_single_worker_always_sequential(self):
        controller = self.make(workers=1)
        controller.observe(1.0, 10, "sequential")
        assert controller.decide(100)[0] == "sequential"

    def test_small_batches_stay_sequential(self, monkeypatch):
        import repro.service.frontend as frontend

        monkeypatch.setattr(frontend.os, "cpu_count", lambda: 8)
        controller = self.make()
        controller.observe(0.01 * 20, 20, "sequential")
        mode, reason = controller.decide(2)
        assert mode == "sequential" and "min_parallel_batch" in reason

    def test_parallel_observations_convert_to_serial_equivalent(self):
        controller = self.make()
        controller.observe(1.0, 10, "parallel")  # 4 workers → 0.4 s/query
        assert controller.mean_seconds == pytest.approx(0.4)

    def test_drift_resets_lifetime_statistics(self):
        controller = self.make(drift_window=4, drift_factor=4.0, warmup_queries=1)
        # A long cheap regime...
        for _ in range(20):
            controller.observe(0.001 * 10, 10, "sequential")
        cheap_mean = controller.mean_seconds
        # ...then the workload shifts to 100x slower queries.
        for _ in range(4):
            controller.observe(0.1 * 10, 10, "sequential")
        assert controller.drift_events, "drift was not detected"
        assert controller.mean_seconds > cheap_mean * 10
        event = controller.drift_events[0]
        assert event["window_mean_seconds"] > event["lifetime_mean_seconds"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self.make(drift_window=1)
        with pytest.raises(ValueError):
            self.make(drift_factor=1.0)
