"""Tests for vocabularies and relational structures."""

import pytest

from repro.exceptions import StructureError, VocabularyError
from repro.structures import (
    GRAPH_VOCABULARY,
    RelationSymbol,
    Structure,
    Vocabulary,
    cycle,
    path,
)


class TestVocabulary:
    def test_from_mapping(self):
        vocabulary = Vocabulary({"E": 2, "C": 1})
        assert vocabulary.arity("E") == 2
        assert vocabulary.arity("C") == 1
        assert set(vocabulary.names()) == {"E", "C"}
        assert vocabulary.max_arity() == 2

    def test_symbol_objects(self):
        vocabulary = Vocabulary([RelationSymbol("R", 3)])
        assert vocabulary.symbol("R").arity == 3

    def test_conflicting_arities_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary([RelationSymbol("R", 1), RelationSymbol("R", 2)])

    def test_extend_and_restrict(self):
        vocabulary = Vocabulary({"E": 2})
        extended = vocabulary.extend({"C": 1})
        assert "C" in extended and "E" in extended
        restricted = extended.restrict(["E"])
        assert "C" not in restricted
        with pytest.raises(VocabularyError):
            extended.extend({"E": 3})
        with pytest.raises(VocabularyError):
            extended.restrict(["missing"])

    def test_equality_and_hash(self):
        assert Vocabulary({"E": 2}) == GRAPH_VOCABULARY
        assert hash(Vocabulary({"E": 2})) == hash(GRAPH_VOCABULARY)

    def test_unknown_symbol(self):
        with pytest.raises(VocabularyError):
            GRAPH_VOCABULARY.arity("R")

    def test_bad_symbol_name_and_arity(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("", 1)
        with pytest.raises(VocabularyError):
            RelationSymbol("R", -1)


class TestStructure:
    def test_basic_construction(self):
        structure = Structure(GRAPH_VOCABULARY, [1, 2, 3], {"E": [(1, 2), (2, 3)]})
        assert len(structure) == 3
        assert (1, 2) in structure.relation("E")
        assert structure.total_tuples() == 2

    def test_empty_universe_rejected(self):
        with pytest.raises(StructureError):
            Structure(GRAPH_VOCABULARY, [], {})

    def test_wrong_arity_rejected(self):
        with pytest.raises(StructureError):
            Structure(GRAPH_VOCABULARY, [1, 2], {"E": [(1, 2, 2)]})

    def test_unknown_symbol_rejected(self):
        with pytest.raises(VocabularyError):
            Structure(GRAPH_VOCABULARY, [1], {"R": [(1,)]})

    def test_tuple_outside_universe_rejected(self):
        with pytest.raises(StructureError):
            Structure(GRAPH_VOCABULARY, [1, 2], {"E": [(1, 7)]})

    def test_size_measure(self):
        # |A| = |tau| + |A| + sum |R^A| * ar(R): 1 + 3 + 2*2 = 8 for P3.
        assert path(3).size() == 1 + 3 + 4 * 2

    def test_induced_substructure(self):
        structure = cycle(5)
        induced = structure.induced_substructure({1, 2, 3})
        assert len(induced) == 3
        assert (1, 2) in induced.relation("E")
        assert (5, 1) not in induced.relation("E")
        with pytest.raises(StructureError):
            structure.induced_substructure(set())

    def test_restrict_and_expand(self):
        vocabulary = Vocabulary({"E": 2, "C": 1})
        structure = Structure(vocabulary, [1, 2], {"E": [(1, 2)], "C": [(1,)]})
        restricted = structure.restrict_vocabulary(["E"])
        assert "C" not in restricted.vocabulary
        expanded = restricted.expand({"D": 1}, {"D": [(2,)]})
        assert expanded.relation("D") == frozenset({(2,)})
        with pytest.raises(VocabularyError):
            restricted.expand({"D": 1}, {"Z": [(1,)]})

    def test_relabel(self):
        renamed = path(3).relabel({1: "a", 2: "b", 3: "c"})
        assert ("a", "b") in renamed.relation("E")
        with pytest.raises(StructureError):
            path(3).relabel({1: "x", 2: "x"})

    def test_equality_and_hash(self):
        assert path(3) == path(3)
        assert hash(path(3)) == hash(path(3))
        assert path(3) != path(4)

    def test_missing_relation_is_empty(self):
        structure = Structure(Vocabulary({"E": 2, "C": 1}), [1], {})
        assert structure.relation("E") == frozenset()
        assert structure.relation("C") == frozenset()

    def test_elements_of(self):
        structure = path(4)
        assert structure.elements_of("E") == frozenset({1, 2, 3, 4})
