"""Tests for the branch-and-bound treewidth and pathwidth engines.

Mirrors the treedepth-engine test layer, with the same three kinds of
evidence:

* **differential fuzz** — on 120+ random graphs of ≤ 12 vertices both
  engines must equal the seed subset DPs (kept verbatim as
  ``legacy_exact_treewidth`` / ``legacy_exact_pathwidth``);
* **known closed forms** — paths, cycles, cliques, grids and complete
  binary trees up to 25 vertices have textbook widths
  (``tw(P_n) = pw(P_n) = 1``, ``tw(C_n) = pw(C_n) = 2``,
  ``tw(K_n) = pw(K_n) = n − 1``, ``tw = pw = min(r, c)`` for r×c grids
  with both sides ≥ 2, ``tw(T) = 1`` for trees);
* **witnesses** — every engine run must return an elimination ordering /
  layout whose decomposition passes the conftest validators *and*
  achieves the reported width, so an engine bug cannot silently report
  an infeasible number.

Plus the facade/classifier/planner wiring: exactness at 13–25 elements,
recognised closed forms beyond, per-measure ``exact`` flags, and the
end-to-end route flip the exact widths buy.
"""

import random

import pytest

from conftest import (
    assert_valid_path_decomposition,
    assert_valid_tree_decomposition,
)
from repro.classification.classifier import classify_structure
from repro.classification.degrees import ComplexityDegree
from repro.classification.solver_dispatch import (
    DEFAULT_PLANNER_CONFIG,
    choose_degree,
    solve_with_degree,
)
from repro.decomposition.exact import (
    exact_pathwidth,
    exact_treewidth,
    legacy_exact_pathwidth,
    legacy_exact_pathwidth_layout,
    legacy_exact_treewidth,
    legacy_exact_treewidth_ordering,
)
from repro.decomposition.path_decomposition import path_decomposition_from_ordering
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.width import (
    PATHWIDTH_EXACT_SIZE_LIMIT,
    TREEWIDTH_EXACT_SIZE_LIMIT,
    good_path_decomposition,
    good_tree_decomposition,
    graph_pathwidth,
    graph_treewidth,
    width_profile,
    width_profile_report,
)
from repro.decomposition.width_engine import (
    PathwidthEngine,
    TreewidthEngine,
    compute_pathwidth,
    compute_treewidth,
    engine_pathwidth,
    engine_pathwidth_layout,
    engine_treewidth,
    engine_treewidth_ordering,
    recognized_pathwidth,
    recognized_treewidth,
)
from repro.eval.planner import route_certified
from repro.exceptions import DecompositionError
from repro.graphlib.graph import Graph
from repro.homomorphism.backtracking import has_homomorphism
from repro.structures.builders import (
    clique_graph,
    complete_binary_tree_graph,
    cycle,
    cycle_graph,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.structures.gaifman import gaifman_graph
from repro.structures.random_gen import random_graph_structure, random_tree_graph
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

FUZZ_SEED = 74207281


def random_small_graphs(count):
    """Yield (name, graph) pairs covering sizes 1–12 and densities 0.1–0.8."""
    rng = random.Random(FUZZ_SEED)
    for index in range(count):
        n = rng.randint(1, 12)
        p = rng.uniform(0.1, 0.8)
        structure = random_graph_structure(n, p, seed=FUZZ_SEED + index)
        yield f"G(n={n}, p={p:.2f}, #{index})", gaifman_graph(structure)


class TestDifferentialFuzz:
    def test_treewidth_engine_matches_legacy_on_120_random_graphs(self):
        for name, graph in random_small_graphs(120):
            result = compute_treewidth(graph)
            assert result.value == legacy_exact_treewidth(graph), name
            assert_valid_tree_decomposition(graph, result.decomposition, result.value)

    def test_pathwidth_engine_matches_legacy_on_120_random_graphs(self):
        for name, graph in random_small_graphs(120):
            result = compute_pathwidth(graph)
            assert result.value == legacy_exact_pathwidth(graph), name
            assert_valid_path_decomposition(graph, result.decomposition, result.value)

    def test_engines_match_legacy_on_random_trees(self):
        for index in range(15):
            graph = gaifman_graph(
                graph_structure(random_tree_graph(11, seed=FUZZ_SEED + index))
            )
            assert engine_treewidth(graph) == legacy_exact_treewidth(graph)
            assert engine_pathwidth(graph) == legacy_exact_pathwidth(graph)

    def test_engines_match_legacy_on_structured_families(self):
        for graph in (
            path_graph(9),
            cycle_graph(9),
            clique_graph(6),
            star_graph(8),
            grid_graph(2, 4),
            grid_graph(3, 3),
            complete_binary_tree_graph(2),
        ):
            assert engine_treewidth(graph) == legacy_exact_treewidth(graph)
            assert engine_pathwidth(graph) == legacy_exact_pathwidth(graph)

    def test_legacy_witnesses_agree_with_engine_values(self):
        # The seed DPs' own witnesses realise the same optimum the engines
        # report — both directions of the differential are pinned.
        graph = grid_graph(3, 3)
        width, ordering = legacy_exact_treewidth_ordering(graph)
        realised = TreeDecomposition.from_elimination_ordering(graph, ordering).width()
        assert realised == width == engine_treewidth(graph)
        width, layout = legacy_exact_pathwidth_layout(graph)
        realised = path_decomposition_from_ordering(graph, layout).width()
        assert realised == width == engine_pathwidth(graph)


class TestKnownValues:
    @pytest.mark.parametrize("n", list(range(2, 26)))
    def test_paths(self, n):
        assert engine_treewidth(path_graph(n)) == 1
        assert engine_pathwidth(path_graph(n)) == 1

    @pytest.mark.parametrize("n", list(range(3, 26)))
    def test_cycles(self, n):
        assert engine_treewidth(cycle_graph(n)) == 2
        assert engine_pathwidth(cycle_graph(n)) == 2

    @pytest.mark.parametrize("n", list(range(1, 17)))
    def test_cliques(self, n):
        assert engine_treewidth(clique_graph(n)) == max(0, n - 1)
        assert engine_pathwidth(clique_graph(n)) == max(0, n - 1)

    @pytest.mark.parametrize(
        "rows, cols", [(2, 2), (2, 3), (2, 12), (3, 3), (3, 5), (4, 5), (4, 6), (5, 5)]
    )
    def test_grids(self, rows, cols):
        assert engine_treewidth(grid_graph(rows, cols)) == min(rows, cols)
        assert engine_pathwidth(grid_graph(rows, cols)) == min(rows, cols)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_complete_binary_trees(self, k):
        # complete_binary_tree_graph(k) has k+1 levels and 2^(k+1)−1 vertices;
        # trees have treewidth 1 and pathwidth ⌈height/2⌉-ish: 1, 1, 2 here.
        assert engine_treewidth(complete_binary_tree_graph(k)) == 1
        assert engine_pathwidth(complete_binary_tree_graph(k)) == (2 if k == 3 else 1)

    def test_star(self):
        assert engine_treewidth(star_graph(10)) == 1
        assert engine_pathwidth(star_graph(10)) == 1

    def test_single_vertex(self):
        assert engine_treewidth(path_graph(1)) == 0
        assert engine_pathwidth(path_graph(1)) == 0

    def test_disconnected_graph_takes_component_maximum(self):
        graph = Graph(range(10), [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)])
        # Components: P3 (width 1), C3 (width 2), four isolated vertices (0).
        assert engine_treewidth(graph) == 2
        assert engine_pathwidth(graph) == 2

    def test_edgeless_graph(self):
        assert engine_treewidth(Graph(range(5))) == 0
        assert engine_pathwidth(Graph(range(5))) == 0

    def test_empty_graph_rejected(self):
        with pytest.raises(DecompositionError):
            engine_treewidth(Graph())
        with pytest.raises(DecompositionError):
            engine_pathwidth(Graph())

    def test_pathwidth_lower_hint_does_not_change_the_answer(self):
        graph = grid_graph(3, 4)
        assert engine_pathwidth(graph, lower_hint=3) == engine_pathwidth(graph)


WITNESS_GRAPHS = [
    lambda: cycle_graph(13),
    lambda: cycle_graph(25),
    lambda: path_graph(25),
    lambda: grid_graph(3, 5),
    lambda: grid_graph(4, 5),
    lambda: clique_graph(9),
    lambda: complete_binary_tree_graph(3),
    lambda: gaifman_graph(random_graph_structure(14, 0.3, seed=FUZZ_SEED)),
    lambda: gaifman_graph(random_graph_structure(16, 0.2, seed=FUZZ_SEED)),
    lambda: gaifman_graph(graph_structure(random_tree_graph(25, seed=FUZZ_SEED))),
]


class TestWitnesses:
    @pytest.mark.parametrize("build", WITNESS_GRAPHS)
    def test_tree_decomposition_witnesses_value(self, build):
        graph = build()
        result = compute_treewidth(graph)
        assert_valid_tree_decomposition(graph, result.decomposition, result.value)
        assert len(result.ordering) == len(graph)

    @pytest.mark.parametrize("build", WITNESS_GRAPHS)
    def test_path_decomposition_witnesses_value(self, build):
        graph = build()
        result = compute_pathwidth(graph)
        assert_valid_path_decomposition(graph, result.decomposition, result.value)
        assert len(result.layout) == len(graph)

    def test_ordering_and_layout_entry_points(self):
        graph = grid_graph(3, 4)
        width, ordering = engine_treewidth_ordering(graph)
        assert width == 3
        realised = TreeDecomposition.from_elimination_ordering(graph, ordering)
        assert realised.width() == width
        width, layout = engine_pathwidth_layout(graph)
        assert width == 3
        assert path_decomposition_from_ordering(graph, layout).width() == width

    def test_engines_report_search_statistics(self):
        result = compute_treewidth(
            gaifman_graph(random_graph_structure(12, 0.3, seed=FUZZ_SEED))
        )
        assert result.subproblems > 0

    def test_recognised_shapes_skip_branching(self):
        for build in (
            lambda: cycle_graph(21),
            lambda: path_graph(24),
            lambda: grid_graph(5, 5),
        ):
            graph = build()
            engine = TreewidthEngine(graph)
            engine.run()
            assert engine.branched == 0
            engine = PathwidthEngine(graph)
            engine.run()
            assert engine.branched == 0


class TestRecognizedShapes:
    def test_closed_forms_at_any_size(self):
        assert recognized_treewidth(path_graph(40)) == 1
        assert recognized_treewidth(cycle_graph(40)) == 2
        assert recognized_treewidth(clique_graph(30)) == 29
        assert recognized_treewidth(grid_graph(6, 9)) == 6
        assert recognized_pathwidth(path_graph(40)) == 1
        assert recognized_pathwidth(cycle_graph(40)) == 2
        assert recognized_pathwidth(clique_graph(30)) == 29
        assert recognized_pathwidth(grid_graph(6, 9)) == 6

    def test_trees_recognised_for_treewidth_only(self):
        tree = gaifman_graph(graph_structure(random_tree_graph(30, seed=FUZZ_SEED)))
        assert recognized_treewidth(tree) == 1
        # General trees have no pathwidth closed form (stars aside).
        assert recognized_pathwidth(tree) is None
        assert recognized_pathwidth(star_graph(30)) == 1

    def test_disconnected_recognition_takes_maximum(self):
        graph = Graph(range(8), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 7)])
        # C3 (width 2) plus P5 (width 1).
        assert recognized_treewidth(graph) == 2
        assert recognized_pathwidth(graph) == 2

    def test_unrecognised_component_defeats_recognition(self):
        graph = Graph(range(5), [(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)])
        assert recognized_treewidth(graph) is None
        assert recognized_pathwidth(graph) is None


def _grid_plus_tadpole():
    """A 29-vertex graph outside the windows with one unrecognised component."""
    grid = grid_graph(5, 5)
    tadpole = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
    vertices = list(grid.vertices) + ["a", "b", "c", "d"]
    return Graph(vertices, list(grid.edge_pairs()) + tadpole)


class TestFacadeWiring:
    def test_window_constants(self):
        assert TREEWIDTH_EXACT_SIZE_LIMIT == 25
        assert PATHWIDTH_EXACT_SIZE_LIMIT == 25

    def test_facade_is_exact_in_the_13_to_25_window(self):
        assert graph_treewidth(grid_graph(3, 5)) == 3
        assert graph_pathwidth(grid_graph(3, 5)) == 3
        graph = gaifman_graph(random_graph_structure(15, 0.25, seed=FUZZ_SEED + 7))
        assert graph_treewidth(graph) == exact_treewidth(graph)
        assert graph_pathwidth(graph) == exact_pathwidth(graph)

    def test_facade_is_exact_for_recognised_shapes_beyond_the_window(self):
        assert graph_treewidth(grid_graph(6, 9)) == 6
        assert graph_pathwidth(grid_graph(6, 9)) == 6
        assert graph_treewidth(cycle_graph(40)) == 2
        assert graph_pathwidth(cycle_graph(40)) == 2

    def test_facade_falls_back_to_heuristic_beyond_the_window(self):
        graph = _grid_plus_tadpole()
        assert graph_treewidth(graph, exact=True) == 5
        assert graph_pathwidth(graph, exact=True) == 5
        # Default policy: unrecognised 29-vertex graph → heuristic bound.
        assert graph_treewidth(graph) >= 5
        assert graph_pathwidth(graph) >= 5

    def test_good_decompositions_are_optimal_in_the_window(self):
        structure = graph_structure(grid_graph(3, 5))
        graph = gaifman_graph(structure)
        tree = good_tree_decomposition(structure)
        assert_valid_tree_decomposition(graph, tree, 3)
        pathdec = good_path_decomposition(structure)
        assert_valid_path_decomposition(graph, pathdec, 3)

    def test_good_decompositions_optimal_for_recognised_shapes_beyond(self):
        structure = graph_structure(grid_graph(6, 9))
        graph = gaifman_graph(structure)
        assert_valid_tree_decomposition(graph, good_tree_decomposition(structure), 6)
        assert_valid_path_decomposition(graph, good_path_decomposition(structure), 6)

    def test_width_profile_uses_engines_in_the_window(self):
        tw, pw, td = width_profile(graph_structure(grid_graph(3, 5)))
        assert (tw, pw) == (3, 3)
        assert td > 3


class TestExactnessFlags:
    def test_report_values_match_tuple_profile(self):
        structure = cycle(9)
        report = width_profile_report(structure)
        assert report.values() == width_profile(structure)

    def test_all_measures_exact_in_the_window(self):
        report = width_profile_report(graph_structure(grid_graph(3, 5)))
        assert report.treewidth == report.treewidth.__class__(3, True)
        assert report.pathwidth.value == 3 and report.pathwidth.exact
        assert report.treedepth.exact

    def test_treedepth_already_exact_in_the_13_to_25_window(self):
        # Regression for the satellite fix: the measure that was already
        # exact at 13–25 must say so.
        report = width_profile_report(cycle(13))
        assert report.treedepth.value == 5
        assert report.treedepth.exact

    def test_heuristic_bounds_are_flagged_beyond_the_window(self):
        structure = graph_structure(_grid_plus_tadpole())
        report = width_profile_report(structure)
        assert not report.treewidth.exact
        assert not report.pathwidth.exact
        assert report.treewidth.value >= 5
        assert report.pathwidth.value >= 5

    def test_recognised_shapes_stay_exact_beyond_the_window(self):
        report = width_profile_report(graph_structure(grid_graph(6, 9)))
        assert report.treewidth == report.treewidth.__class__(6, True)
        assert report.pathwidth == report.pathwidth.__class__(6, True)
        # Grids are not a recognised treedepth shape at this size.
        assert not report.treedepth.exact

    def test_forced_exactness_overrides_the_window(self):
        report = width_profile_report(graph_structure(_grid_plus_tadpole()), exact=True)
        assert report.treewidth == report.treewidth.__class__(5, True)
        assert report.pathwidth == report.pathwidth.__class__(5, True)

    def test_classify_structure_carries_the_flags(self):
        profile = classify_structure(cycle(14))
        assert profile.core_treewidth_exact
        assert profile.core_pathwidth_exact
        assert profile.core_treedepth_exact


def rigid_colored_tree():
    """A rigid 13-element colored tree pattern whose core is itself.

    The tree is ``random_tree_graph(13, seed=8)``, picked because its true
    pathwidth is 2 while the BFS-layout bound is 4 — exactly the
    above-threshold/below-threshold straddle the route-flip regression
    needs.  Unary relations B0..B5 color each vertex with a distinct
    2-subset of six colors (C(6,2) = 15 ≥ 13): homomorphisms preserve
    color *membership*, and no 2-subset contains another, so every
    endomorphism fixes every vertex and the core is the whole structure —
    a 13-element core squarely in the 13–25 window.
    """
    from itertools import combinations

    graph = random_tree_graph(13, seed=8)
    vertices = sorted(graph.vertices, key=repr)
    edges = set()
    for u, v in graph.edge_pairs():
        edges.add((u, v))
        edges.add((v, u))
    relations = {"E": edges, **{f"B{i}": set() for i in range(6)}}
    for vertex, pair in zip(vertices, combinations(range(6), 2)):
        for color in pair:
            relations[f"B{color}"].add((vertex,))
    vocabulary = Vocabulary({"E": 2, **{f"B{i}": 1 for i in range(6)}})
    return Structure(vocabulary, vertices, relations)


class TestRouteFlip:
    """The end-to-end regression the exact widths were built for: a
    15-element core whose true pathwidth (2) sits below the PATH threshold
    while the BFS heuristic bound sits above it, so the exact profile flips
    the planner route from TREE_COMPLETE to PARA_L — with identical answers."""

    def test_exact_width_flips_the_route(self):
        pattern = rigid_colored_tree()
        profile = classify_structure(pattern)
        assert profile.core_size == 13  # rigid: the core is the pattern itself
        assert profile.core_pathwidth == 2
        assert profile.core_pathwidth_exact

        heuristic_report = width_profile_report(profile.core, exact=False)
        assert not heuristic_report.pathwidth.exact
        assert (
            heuristic_report.pathwidth.value
            > DEFAULT_PLANNER_CONFIG.pathwidth_threshold
        )
        heuristic_profile = StructureProfile_with(
            profile, heuristic_report
        )

        assert choose_degree(heuristic_profile) is ComplexityDegree.TREE_COMPLETE
        assert choose_degree(profile) is ComplexityDegree.PARA_L

    def test_flipped_route_preserves_answers(self):
        pattern = rigid_colored_tree()
        profile = classify_structure(pattern)
        heuristic_profile = StructureProfile_with(
            profile, width_profile_report(profile.core, exact=False)
        )
        positive = pattern
        edges = set(pattern.relation("E"))
        edge = next(iter(sorted(edges)))
        pruned = (edges - {edge, (edge[1], edge[0])})
        negative = Structure(
            pattern.vocabulary,
            pattern.universe,
            {**{name: pattern.relation(name) for name in pattern.vocabulary.names()},
             "E": pruned},
        )
        for target in (positive, negative):
            reference = has_homomorphism(pattern, target)
            exact_result = solve_with_degree(
                pattern, target, choose_degree(profile), profile
            )
            heuristic_result = solve_with_degree(
                pattern, target, choose_degree(heuristic_profile), heuristic_profile
            )
            assert exact_result.answer == reference
            assert heuristic_result.answer == reference

    def test_planner_marks_heuristic_routes_uncertified(self):
        pattern = rigid_colored_tree()
        profile = classify_structure(pattern)
        heuristic_profile = StructureProfile_with(
            profile, width_profile_report(profile.core, exact=False)
        )
        assert route_certified(profile, choose_degree(profile))
        assert not route_certified(
            heuristic_profile, choose_degree(heuristic_profile)
        )


def StructureProfile_with(profile, report):
    """Clone a profile with the widths/flags of another report (test helper
    standing in for the pre-engine classifier output)."""
    from repro.classification.classifier import StructureProfile

    return StructureProfile(
        profile.structure,
        profile.core,
        report.treewidth.value,
        report.pathwidth.value,
        report.treedepth.value,
        core_certificate=profile.core_certificate,
        core_elimination_forest=profile.core_elimination_forest,
        core_treewidth_exact=report.treewidth.exact,
        core_pathwidth_exact=report.pathwidth.exact,
        core_treedepth_exact=report.treedepth.exact,
    )
