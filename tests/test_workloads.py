"""Tests for the workload generators."""

import pytest

from repro.homomorphism import has_homomorphism
from repro.structures import is_star_expansion, path, star_expansion
from repro.workloads import (
    EXPECTED_DEGREES,
    all_family_names,
    colored_path_target,
    emb_instances_for_pattern,
    family_by_name,
    hom_instances_for_pattern,
)


class TestFamilies:
    def test_every_registered_family_builds(self):
        for name in all_family_names():
            members = family_by_name(name, 3)
            assert len(members) == 3
            assert all(len(member) >= 1 for member in members)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            family_by_name("nonexistent", 3)

    def test_expected_degrees_cover_all_families(self):
        assert set(all_family_names()) == set(EXPECTED_DEGREES)

    def test_families_grow(self):
        for name in ("directed_paths", "starred_binary_trees", "cliques"):
            members = family_by_name(name, 4)
            sizes = [len(member) for member in members]
            assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


class TestTargets:
    def test_planted_instances_are_yes(self):
        pattern = path(4)
        for instance in hom_instances_for_pattern(pattern, [6, 8], planted=True):
            assert has_homomorphism(instance.pattern, instance.target)

    def test_random_instances_have_requested_sizes(self):
        pattern = star_expansion(path(3))
        instances = hom_instances_for_pattern(pattern, [5, 7], planted=False)
        assert [len(instance.target) for instance in instances] == [5, 7]

    def test_colored_path_target_shape(self):
        target = colored_path_target(4, width=3, edge_probability=0.5, seed=1)
        assert len(target) == 12
        assert is_star_expansion(star_expansion(path(4))) # sanity: helper available
        # Every layer colour is non-empty with exactly `width` members.
        from repro.structures import color_symbol

        for layer in range(1, 5):
            assert len(target.relation(color_symbol(layer))) == 3

    def test_colored_path_target_deterministic(self):
        assert colored_path_target(3, 2, 0.5, seed=5) == colored_path_target(3, 2, 0.5, seed=5)

    def test_emb_instances(self):
        instances = emb_instances_for_pattern(path(3), [4, 6])
        assert [len(instance.target) for instance in instances] == [4, 6]
