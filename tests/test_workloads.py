"""Tests for the workload generators."""

import pytest

from repro.homomorphism import has_homomorphism
from repro.structures import is_star_expansion, path, star_expansion
from repro.structures.random_gen import (
    random_graph_structure,
    random_structure,
    random_tree_graph,
)
from repro.structures.vocabulary import Vocabulary
from repro.workloads import (
    EXPECTED_DEGREES,
    all_family_names,
    all_scenario_names,
    all_scenarios,
    colored_path_target,
    dense_graph_database,
    emb_instances_for_pattern,
    expander_database,
    family_by_name,
    grid_database,
    hom_instances_for_pattern,
    mixed_vocabulary_database,
    scenario_by_name,
    skewed_database,
)


class TestFamilies:
    def test_every_registered_family_builds(self):
        for name in all_family_names():
            members = family_by_name(name, 3)
            assert len(members) == 3
            assert all(len(member) >= 1 for member in members)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            family_by_name("nonexistent", 3)

    def test_expected_degrees_cover_all_families(self):
        assert set(all_family_names()) == set(EXPECTED_DEGREES)

    def test_families_grow(self):
        for name in ("directed_paths", "starred_binary_trees", "cliques"):
            members = family_by_name(name, 4)
            sizes = [len(member) for member in members]
            assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


class TestTargets:
    def test_planted_instances_are_yes(self):
        pattern = path(4)
        for instance in hom_instances_for_pattern(pattern, [6, 8], planted=True):
            assert has_homomorphism(instance.pattern, instance.target)

    def test_random_instances_have_requested_sizes(self):
        pattern = star_expansion(path(3))
        instances = hom_instances_for_pattern(pattern, [5, 7], planted=False)
        assert [len(instance.target) for instance in instances] == [5, 7]

    def test_colored_path_target_shape(self):
        target = colored_path_target(4, width=3, edge_probability=0.5, seed=1)
        assert len(target) == 12
        assert is_star_expansion(star_expansion(path(4))) # sanity: helper available
        # Every layer colour is non-empty with exactly `width` members.
        from repro.structures import color_symbol

        for layer in range(1, 5):
            assert len(target.relation(color_symbol(layer))) == 3

    def test_colored_path_target_deterministic(self):
        assert colored_path_target(3, 2, 0.5, seed=5) == colored_path_target(3, 2, 0.5, seed=5)

    def test_emb_instances(self):
        instances = emb_instances_for_pattern(path(3), [4, 6])
        assert [len(instance.target) for instance in instances] == [4, 6]


class TestDatabaseTargets:
    def test_skewed_database_has_requested_domain(self):
        database = skewed_database(20, rows_per_table=40, seed=3)
        assert len(database.domain) == 20
        assert database.arity("E") == 2

    def test_skew_concentrates_mass(self):
        # With heavy skew the most frequent value dominates; uniform spreads.
        skewed = skewed_database(50, rows_per_table=200, skew=2.5, seed=1)
        counts = {}
        for a, b in skewed.table("E"):
            counts[a] = counts.get(a, 0) + 1
        top_share = max(counts.values()) / len(skewed.table("E"))
        assert top_share > 0.25

    def test_dense_graph_database_density(self):
        database = dense_graph_database(12, edge_probability=0.5, seed=2)
        assert 30 < len(database.table("E")) < 110  # of 132 ordered pairs

    def test_grid_database_is_symmetric(self):
        database = grid_database(3, 4)
        rows = set(database.table("E"))
        assert all((b, a) in rows for a, b in rows)
        assert len(database.domain) == 12

    def test_expander_database_regularity(self):
        database = expander_database(11, (1, 3))
        degree = {}
        for a, _ in database.table("E"):
            degree[a] = degree.get(a, 0) + 1
        assert set(degree.values()) == {4}  # 2 offsets → 4-regular

    def test_mixed_vocabulary_database_tables(self):
        database = mixed_vocabulary_database(15, rows_per_table=30, seed=4)
        assert database.table_names() == ["C1", "C2", "E", "L", "R"]
        assert database.arity("R") == 3


class TestScenarios:
    def test_every_scenario_builds_at_requested_scale(self):
        for name in all_scenario_names():
            scenario = scenario_by_name(name, count=5, seed=1)
            assert scenario.name == name
            assert len(scenario.queries) == 5
            assert scenario.database.number_of_rows() > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_by_name("nonexistent")

    def test_scenarios_are_deterministic(self):
        first = all_scenarios(count=6, seed=9)
        second = all_scenarios(count=6, seed=9)
        for a, b in zip(first, second):
            assert [str(q) for q in a.queries] == [str(q) for q in b.queries]
            assert a.database.to_structure() == b.database.to_structure()

    def test_scenario_queries_match_database_schema(self):
        for name in all_scenario_names():
            scenario = scenario_by_name(name, count=8, seed=2)
            schema = scenario.database.vocabulary()
            for query in scenario.queries:
                for symbol in query.vocabulary():
                    assert symbol.name in schema
                    assert schema.arity(symbol.name) == symbol.arity


class TestGeneratorDeterminism:
    """Same seed ⇒ identical structures; no module-global random state."""

    def test_same_seed_same_graph_structure(self):
        assert random_graph_structure(12, 0.4, seed=7) == random_graph_structure(
            12, 0.4, seed=7
        )

    def test_same_seed_same_random_structure(self):
        vocabulary = Vocabulary({"E": 2, "R": 3})
        assert random_structure(vocabulary, 9, 20, seed=11) == random_structure(
            vocabulary, 9, 20, seed=11
        )

    def test_same_seed_same_tree(self):
        first = random_tree_graph(16, seed=5)
        second = random_tree_graph(16, seed=5)
        assert first.vertices == second.vertices and first.edges == second.edges

    def test_omitted_seed_is_reproducible(self):
        # seed=None means the fixed DEFAULT_SEED, not OS entropy.
        assert random_graph_structure(10, 0.5) == random_graph_structure(10, 0.5)

    def test_global_random_state_untouched(self):
        import random as global_random

        global_random.seed(123)
        before = global_random.getstate()
        random_graph_structure(10, 0.5, seed=3)
        random_structure(Vocabulary({"E": 2}), 6, 10, seed=3)
        scenario_by_name("mixed_vocabulary", count=5, seed=3)
        assert global_random.getstate() == before


class TestScenarioScaling:
    """The --scale knob: bigger databases, identical query batches."""

    def test_scale_one_is_the_default(self):
        for name in ("grid_walks", "cycles_dense"):
            base = scenario_by_name(name, count=6, seed=2)
            explicit = scenario_by_name(name, count=6, seed=2, scale=1)
            assert [str(q) for q in base.queries] == [str(q) for q in explicit.queries]
            assert base.database.to_structure(
                base.queries[0].vocabulary()
            ) == explicit.database.to_structure(explicit.queries[0].vocabulary())

    def test_queries_identical_at_every_scale(self):
        for name in all_scenario_names():
            base = scenario_by_name(name, count=5, seed=4)
            scaled = scenario_by_name(name, count=5, seed=4, scale=6)
            assert [str(q) for q in base.queries] == [str(q) for q in scaled.queries], name

    def test_scaled_databases_grow_into_thousands_of_rows(self):
        total = 0
        for name in all_scenario_names():
            scenario = scenario_by_name(name, count=3, seed=4, scale=10)
            target = scenario.database.to_structure(scenario.queries[0].vocabulary())
            base = scenario_by_name(name, count=3, seed=4)
            base_target = base.database.to_structure(base.queries[0].vocabulary())
            assert len(target) > 2 * len(base_target), name
            total += sum(len(target.relation(s.name)) for s in target.vocabulary)
        # Across the suite the scaled databases reach the thousands-of-rows
        # regime the ROADMAP asks for.
        assert total > 10_000

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            scenario_by_name("grid_walks", count=3, seed=0, scale=0)

    def test_all_scenarios_threads_scale_through(self):
        scenarios = all_scenarios(count=2, seed=1, scale=4)
        assert len(scenarios) == len(all_scenario_names())
