"""Tests for minor maps, minor search and the excluded-minor facts of Theorem 2.3."""

import pytest

from repro.decomposition import exact_pathwidth, exact_treedepth, exact_treewidth
from repro.exceptions import StructureError
from repro.graphlib import Graph
from repro.minors import (
    MinorMap,
    excludes_minor,
    find_minor_map,
    has_minor,
    largest_path_minor,
    random_minor,
)
from repro.structures import (
    clique_graph,
    complete_binary_tree_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestMinorMap:
    def test_valid_map_accepted(self):
        host = cycle_graph(6)
        pattern = cycle_graph(3)
        minor_map = MinorMap({1: {1, 2}, 2: {3, 4}, 3: {5, 6}})
        minor_map.validate(pattern, host)

    def test_disjointness_enforced(self):
        host = cycle_graph(4)
        pattern = path_graph(2)
        bad = MinorMap({1: {1, 2}, 2: {2, 3}})
        with pytest.raises(StructureError):
            bad.validate(pattern, host)

    def test_connectivity_enforced(self):
        host = path_graph(4)
        pattern = path_graph(2)
        bad = MinorMap({1: {1, 3}, 2: {2}})
        with pytest.raises(StructureError):
            bad.validate(pattern, host)

    def test_edge_realisation_enforced(self):
        host = Graph([1, 2, 3], [(1, 2)])
        pattern = path_graph(2)
        bad = MinorMap({1: {1}, 2: {3}})
        with pytest.raises(StructureError):
            bad.validate(pattern, host)


class TestMinorSearch:
    def test_triangle_minor_of_k4(self):
        assert has_minor(cycle_graph(3), clique_graph(4))

    def test_path_minor_of_grid(self):
        minor_map = find_minor_map(path_graph(4), grid_graph(2, 2))
        assert minor_map is not None

    def test_cycle_not_minor_of_tree(self):
        assert not has_minor(cycle_graph(3), complete_binary_tree_graph(3))

    def test_k4_not_minor_of_cycle(self):
        assert not has_minor(clique_graph(4), cycle_graph(6))

    def test_star_minor_of_binary_tree(self):
        assert has_minor(star_graph(3), complete_binary_tree_graph(2))

    def test_grid_minor_of_bigger_grid(self):
        assert has_minor(grid_graph(2, 2), grid_graph(2, 3))

    def test_excludes_minor_over_family(self):
        paths = [path_graph(k) for k in range(2, 7)]
        assert excludes_minor(paths, cycle_graph(3))
        assert not excludes_minor([grid_graph(2, 2)], cycle_graph(3))

    def test_largest_path_minor(self):
        assert largest_path_minor(path_graph(5)) == 5
        assert largest_path_minor(cycle_graph(5)) == 5
        assert largest_path_minor(star_graph(3)) == 3


class TestRandomMinorsAndMonotonicity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_minor_is_witnessed(self, seed):
        graph = grid_graph(2, 3)
        minor, minor_map = random_minor(graph, contractions=2, deletions=1, seed=seed)
        minor_map.validate(minor, graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_width_measures_minor_monotone(self, seed):
        """tw, pw, td never increase when passing to a minor (Section 2.2)."""
        graph = grid_graph(2, 3)
        minor, _ = random_minor(graph, contractions=2, deletions=1, seed=seed)
        if len(minor) == 0:
            return
        assert exact_treewidth(minor) <= exact_treewidth(graph)
        assert exact_pathwidth(minor) <= exact_pathwidth(graph)
        assert exact_treedepth(minor) <= exact_treedepth(graph)


class TestExcludedMinorCharacterisations:
    """Finite-sample versions of Theorem 2.3 (the easy directions)."""

    def test_bounded_treewidth_family_excludes_a_grid(self):
        # Trees have treewidth 1 and indeed exclude the 2x2 grid (= C4) as a minor.
        trees = [complete_binary_tree_graph(k) for k in (1, 2)]
        assert excludes_minor(trees, grid_graph(2, 2))

    def test_bounded_pathwidth_family_excludes_a_tree(self):
        # Paths (pathwidth 1) exclude the complete binary tree of height 2.
        paths = [path_graph(k) for k in range(2, 8)]
        assert excludes_minor(paths, complete_binary_tree_graph(2))

    def test_bounded_treedepth_family_excludes_a_path(self):
        # Stars (tree depth 2) exclude the path on 4 vertices as a minor.
        stars = [star_graph(k) for k in range(1, 6)]
        assert excludes_minor(stars, path_graph(4))

    def test_unbounded_families_contain_the_minors(self):
        # Grids contain every small grid; binary trees contain every small tree;
        # paths contain every shorter path.
        assert has_minor(grid_graph(2, 2), grid_graph(3, 3))
        assert has_minor(complete_binary_tree_graph(1), complete_binary_tree_graph(2))
        assert has_minor(path_graph(4), path_graph(6))
