"""Tests for the counting classification (Section 6)."""

import pytest

from repro.classification import ComplexityDegree
from repro.counting import (
    count_bijective_endomorphisms,
    count_hom,
    count_star_homomorphisms_via_oracle,
    counting_degree_for_family,
)
from repro.homomorphism import count_homomorphisms, count_homomorphisms_td
from repro.decomposition import optimal_tree_decomposition
from repro.structures import (
    clique,
    cycle,
    path,
    random_graph_structure,
    star,
    star_expansion,
)
from repro.structures.random_gen import random_colored_target


class TestCountingDispatch:
    @pytest.mark.parametrize("seed", range(3))
    def test_para_l_route_matches_bruteforce(self, seed):
        pattern = star(3)
        target = random_graph_structure(5, 0.5, seed)
        result = count_hom(pattern, target)
        assert result.degree is ComplexityDegree.PARA_L
        assert result.count == count_homomorphisms(pattern, target)

    @pytest.mark.parametrize("seed", range(3))
    def test_counts_match_on_paths_and_cycles(self, seed):
        for pattern in (path(4), cycle(4)):
            target = random_graph_structure(5, 0.5, seed)
            assert count_hom(pattern, target).count == count_homomorphisms(pattern, target)

    def test_uses_widths_of_structure_not_core(self):
        """Counting must not pass to the core: #hom(C6 → K3) ≠ #hom(K2 → K3)."""
        result = count_hom(cycle(6), clique(3))
        assert result.count == count_homomorphisms(cycle(6), clique(3))
        assert result.count != count_homomorphisms(path(2), clique(3))

    def test_counting_degree_for_family(self):
        # Paths: tw/pw bounded, td unbounded -> PATH degree for counting.
        degree = counting_degree_for_family(
            [1] * 8, [1] * 8, [2, 2, 3, 3, 3, 3, 4, 4]
        )
        assert degree is ComplexityDegree.PATH_COMPLETE
        # Binary trees: pw unbounded -> TREE degree.
        degree = counting_degree_for_family([1] * 6, [1, 1, 2, 2, 3, 3], [2, 3, 4, 5, 6, 7])
        assert degree is ComplexityDegree.TREE_COMPLETE


class TestInclusionExclusion:
    def test_automorphism_counts(self):
        assert count_bijective_endomorphisms(cycle(3)) == 6
        assert count_bijective_endomorphisms(path(2)) == 2
        assert count_bijective_endomorphisms(star_expansion(path(3))) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma_62_matches_direct_count_on_cycles(self, seed):
        pattern_star = star_expansion(cycle(3))
        target = random_colored_target(pattern_star, 5, 0.5, seed)
        assert count_star_homomorphisms_via_oracle(pattern_star, target) == count_homomorphisms(
            pattern_star, target
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma_62_matches_direct_count_on_paths(self, seed):
        pattern_star = star_expansion(path(3))
        target = random_colored_target(pattern_star, 4, 0.6, seed)
        assert count_star_homomorphisms_via_oracle(pattern_star, target) == count_homomorphisms(
            pattern_star, target
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_lemma_62_with_dp_oracle(self, seed):
        """The oracle may be any #HOM(A) solver, e.g. the decomposition DP."""
        pattern_star = star_expansion(path(3))
        target = random_colored_target(pattern_star, 4, 0.5, seed + 10)

        def dp_oracle(pattern, block):
            return count_homomorphisms_td(pattern, block, optimal_tree_decomposition(pattern))

        assert count_star_homomorphisms_via_oracle(
            pattern_star, target, oracle=dp_oracle
        ) == count_homomorphisms(pattern_star, target)

    def test_zero_count_instance(self):
        pattern_star = star_expansion(cycle(3))
        # A target whose colour classes are all a single element with no edges.
        from repro.structures import Structure

        target = Structure(
            pattern_star.vocabulary,
            ["a"],
            {name: {("a",)} for name in pattern_star.vocabulary.names() if name != "E"},
        )
        assert count_star_homomorphisms_via_oracle(pattern_star, target) == 0
