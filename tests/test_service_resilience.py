"""The resilience layer under injected faults: retries, breakers, failover.

The contract every test here enforces is the one the README's failure
-mode table states: **faults cost time, never correctness**.  Whatever
is injected — transient proxy errors, latency spikes, a hard manager
kill mid-batch — the served answers must be byte-identical to the
fault-free sequential reference, and the detection/response must be
visible in the metrics registry (breaker state, retry counters,
failover counts).

Structure:

* pure-unit layers first (:class:`DeadlineBudget`, :class:`FaultPolicy`,
  the :class:`CircuitBreaker` state machine — including a property-style
  random-walk check against an explicit transition model);
* then :class:`SharedStore` under scripted backing faults
  (:class:`faultinject.FaultyData`): retry-through, degraded local
  mode, reconciliation on recovery;
* then the full service: manager killed between and *mid* batches,
  latency spikes, injected proxy errors — each converging to the
  sequential reference with the recovery visible in ``stats()``.
"""

import multiprocessing
import os
import random
import threading
import time

import pytest

import faultinject
from repro.cq import evaluate_query_set_sequential
from repro.eval import ExecutorConfig
from repro.exceptions import DeadlineExceededError, StoreUnavailableError
from repro.service import QueryService
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    DeadlineBudget,
    FaultPolicy,
    process_rng,
)
from repro.service.store import SharedStore, StoreManager, _VALUE_TAG
from repro.workloads import scenario_by_name

#: A fast policy for unit tests: real retry/backoff mechanics, microsecond
#: delays.
FAST_POLICY = FaultPolicy(
    max_attempts=3, backoff_base_seconds=0.0001, backoff_max_seconds=0.001
)


def triples(results):
    return [(str(query), result.answer, result.solver) for query, result in results]


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=32, seed=17)


@pytest.fixture(scope="module")
def reference(scenario):
    return evaluate_query_set_sequential(scenario.queries, scenario.database)


def parallel_config(**overrides):
    defaults = dict(workers=2, chunk_size=4, min_parallel_batch=1)
    defaults.update(overrides)
    return ExecutorConfig(**defaults)


def fast_store(**overrides):
    """A local-backed store with microsecond retry delays and a twitchy breaker."""
    defaults = dict(
        data={},
        lock=threading.Lock(),
        counters={},
        policy=FAST_POLICY,
        breaker_failures=2,
        breaker_reset_seconds=0.02,
    )
    defaults.update(overrides)
    return SharedStore(**defaults)


# ---------------------------------------------------------------------------
# DeadlineBudget
# ---------------------------------------------------------------------------

class TestDeadlineBudget:
    def test_unlimited_budget_is_inert(self):
        budget = DeadlineBudget(None)
        assert budget.remaining() is None
        assert not budget.expired
        budget.check("anything")  # never raises
        assert budget.clamp(1.5) == 1.5
        assert budget.clamp(None) is None

    def test_finite_budget_clamps_nested_timeouts(self):
        budget = DeadlineBudget(100.0)
        assert budget.clamp(1.0) == 1.0  # own timeout is tighter
        clamped = budget.clamp(500.0)  # budget is tighter
        assert clamped is not None and clamped <= 100.0
        assert budget.clamp(None) is not None  # unlimited inherits the budget

    def test_expiry_raises_with_context(self):
        budget = DeadlineBudget(0.0)
        assert budget.expired
        assert budget.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="claim wait"):
            budget.check("claim wait")

    def test_expires_at_round_trips_across_construction(self):
        # What crosses the process boundary: an absolute monotonic stamp.
        original = DeadlineBudget(42.0)
        copy = DeadlineBudget(expires_at=original.expires_at)
        assert copy.expires_at == original.expires_at

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            DeadlineBudget(-1.0)


# ---------------------------------------------------------------------------
# FaultPolicy
# ---------------------------------------------------------------------------

class TestFaultPolicy:
    def test_success_is_a_passthrough(self):
        calls = []
        assert FAST_POLICY.run(lambda: calls.append(1) or "ok") == "ok"
        assert calls == [1]

    def test_transient_errors_retry_to_success(self):
        attempts = []
        retries = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("hiccup")
            return "recovered"

        value = FAST_POLICY.run(flaky, on_retry=lambda: retries.append(1))
        assert value == "recovered"
        assert len(attempts) == 3
        assert len(retries) == 2

    def test_exhausted_attempts_raise_store_unavailable(self):
        def dead():
            raise BrokenPipeError("gone")

        with pytest.raises(StoreUnavailableError) as excinfo:
            FAST_POLICY.run(dead, op_name="claim")
        assert "claim" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, BrokenPipeError)

    def test_programming_errors_propagate_untouched(self):
        def buggy():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            FAST_POLICY.run(buggy)

    def test_backoff_grows_and_caps_within_jitter_bounds(self):
        policy = FaultPolicy(
            backoff_base_seconds=0.01,
            backoff_multiplier=2.0,
            backoff_max_seconds=0.04,
            jitter=0.5,
        )
        rng = random.Random(0)
        for attempt, base in ((1, 0.01), (2, 0.02), (3, 0.04), (9, 0.04)):
            delay = policy.backoff_seconds(attempt, rng=rng)
            assert base * 0.5 <= delay <= base * 1.5

    def test_zero_jitter_is_deterministic(self):
        policy = FaultPolicy(jitter=0.0, backoff_base_seconds=0.01)
        assert policy.backoff_seconds(1) == 0.01
        assert policy.backoff_seconds(2) == 0.02

    def test_expired_deadline_beats_the_first_attempt(self):
        ran = []
        with pytest.raises(DeadlineExceededError):
            FAST_POLICY.run(lambda: ran.append(1), deadline=DeadlineBudget(0.0))
        assert ran == []

    def test_open_breaker_fast_fails_without_running(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_seconds=60.0)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        ran = []
        with pytest.raises(StoreUnavailableError, match="circuit breaker is open"):
            FAST_POLICY.run(lambda: ran.append(1), breaker=breaker)
        assert ran == []

    def test_failures_feed_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_seconds=60.0)

        def dead():
            raise ConnectionError("gone")

        with pytest.raises(StoreUnavailableError):
            FAST_POLICY.run(dead, breaker=breaker)
        # Three attempts → three recorded failures → threshold reached.
        assert breaker.state == BREAKER_OPEN
        assert breaker.info()["opens"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_multiplier=0.5)

    def test_process_rng_is_deterministic_per_pid(self):
        # Same pid → same generator object → one reproducible sequence.
        assert process_rng() is process_rng()


# ---------------------------------------------------------------------------
# CircuitBreaker: explicit edges, then a property-style random walk
# ---------------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


#: Every legal (state before, state after) edge per operation.  The
#: random walk asserts observed transitions stay inside this model.
_ALLOWED = {
    "allow": {
        (BREAKER_CLOSED, BREAKER_CLOSED),
        (BREAKER_OPEN, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_HALF_OPEN),
    },
    "success": {
        (BREAKER_CLOSED, BREAKER_CLOSED),
        (BREAKER_OPEN, BREAKER_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    },
    "failure": {
        (BREAKER_CLOSED, BREAKER_CLOSED),
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
    },
}


class TestCircuitBreaker:
    def _tripped(self, clock, threshold=3, reset=1.0):
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout_seconds=reset,
            clock=clock.now,
        )
        for _ in range(threshold):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        return breaker

    def test_threshold_counts_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = self._tripped(clock)
        assert not breaker.allow()  # still open
        clock.advance(1.0)
        admitted = [breaker.allow() for _ in range(10)]
        assert admitted == [True] + [False] * 9
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        clock = _FakeClock()
        breaker = self._tripped(clock)
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()  # the reset timer restarted
        clock.advance(1.0)
        assert breaker.allow()  # next probe admitted

    def test_failure_trickle_while_open_cannot_postpone_the_probe(self):
        clock = _FakeClock()
        breaker = self._tripped(clock)
        for _ in range(5):
            clock.advance(0.3)
            breaker.record_failure()  # must NOT refresh opened_at
        # 1.5s total elapsed > reset timeout: the probe is due.
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_reset_force_closes(self):
        clock = _FakeClock()
        breaker = self._tripped(clock)
        breaker.reset()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_state_codes_project_for_the_gauge(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_seconds=1.0, clock=clock.now
        )
        assert breaker.state_code() == 0.0
        breaker.record_failure()
        assert breaker.state_code() == 2.0
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.state_code() == 1.0

    @pytest.mark.parametrize("seed", range(12))
    def test_random_walk_never_leaves_the_transition_model(self, seed):
        """Property-style: arbitrary op sequences only take legal edges.

        Also checks the half-open probe invariant continuously: between
        a probe admission and its report, no second ``allow`` may pass.
        """
        rng = random.Random(seed)
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=rng.randint(1, 4),
            reset_timeout_seconds=rng.choice([0.5, 1.0, 2.0]),
            clock=clock.now,
        )
        probe_outstanding = False
        for _ in range(400):
            op = rng.choice(("allow", "success", "failure", "tick"))
            if op == "tick":
                clock.advance(rng.choice([0.1, 0.4, 1.1]))
                continue
            before = breaker.state
            if op == "allow":
                admitted = breaker.allow()
                after = breaker.state
                if after == BREAKER_HALF_OPEN and admitted:
                    assert not probe_outstanding, "second probe admitted"
                    probe_outstanding = True
                if before == BREAKER_CLOSED:
                    assert admitted
            elif op == "success":
                breaker.record_success()
                after = breaker.state
                probe_outstanding = False
            else:
                breaker.record_failure()
                after = breaker.state
                probe_outstanding = False
            assert (before, after) in _ALLOWED[op], (op, before, after)
            info = breaker.info()
            assert info["state"] in (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


# ---------------------------------------------------------------------------
# SharedStore under scripted backing faults
# ---------------------------------------------------------------------------

class TestStoreRetries:
    def test_transient_flake_is_retried_through(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data, failures=1)
        store._data = faulty
        assert store.get_or_compute("k", lambda: 41 + 1) == 42
        resilience = store.resilience_info()
        assert resilience["retries"] >= 1
        assert resilience["degraded_computes"] == 0
        assert store.breaker.state == BREAKER_CLOSED
        # The value reached the shared level despite the flake.
        assert faulty.inner["k"] == (_VALUE_TAG, 42)

    def test_latency_spike_is_paid_not_failed(self):
        store = fast_store()
        store._data = faultinject.FaultyData(
            store._data, latency_seconds=0.005, latency_ops=3
        )
        start = time.monotonic()
        assert store.get_or_compute("k", lambda: "slow") == "slow"
        assert time.monotonic() - start < 1.0
        assert store.resilience_info()["degraded_computes"] == 0

    def test_deadline_bounds_a_latency_spike(self):
        store = fast_store()
        store._data = faultinject.FaultyData(
            store._data, latency_seconds=0.05, latency_ops=50
        )
        store.get_or_compute("warm", lambda: 1, deadline=DeadlineBudget(10.0))
        with pytest.raises(DeadlineExceededError):
            # Budget already spent: the pre-claim check must fire.
            store.get_or_compute("cold", lambda: 2, deadline=DeadlineBudget(0.0))


class TestDegradedMode:
    def test_outage_degrades_to_byte_identical_local_answers(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data)
        store._data = faulty
        faulty.down()
        first = store.get_or_compute("k", lambda: {"answer": [1, 2, 3]})
        assert first == {"answer": [1, 2, 3]}
        assert store.breaker.state == BREAKER_OPEN
        # Repeats answer from L1 — no compute, still byte-identical.
        again = store.get_or_compute("k", lambda: pytest.fail("recomputed"))
        assert again == first
        resilience = store.resilience_info()
        assert resilience["degraded_computes"] == 1
        assert resilience["pending_reconcile"] == 1
        assert resilience["breaker"]["state"] == BREAKER_OPEN
        # Shared level never saw the value.
        assert faulty.inner == {}

    def test_open_breaker_fast_fails_instead_of_retrying(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data)
        store._data = faulty
        faulty.down()
        store.get_or_compute("a", lambda: 1)  # opens the breaker
        fired_before = faulty.faults_fired
        store.get_or_compute("b", lambda: 2)  # breaker open: no proxy traffic
        assert faulty.faults_fired == fired_before

    def test_recovery_reconciles_the_degraded_window(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data)
        store._data = faulty
        faulty.down()
        assert store.get_or_compute("a", lambda: 1) == 1
        assert store.get_or_compute("b", lambda: 2) == 2
        assert store.breaker.state == BREAKER_OPEN
        faulty.restore()
        time.sleep(0.03)  # past breaker_reset_seconds
        # The next shared op is the half-open probe; its success closes
        # the breaker...
        assert store.get_or_compute("c", lambda: 3) == 3
        assert store.breaker.state == BREAKER_CLOSED
        # ...and the op after that reconciles the degraded window back.
        assert store.get_or_compute("d", lambda: 4) == 4
        resilience = store.resilience_info()
        assert resilience["reconciled"] == 2
        assert resilience["pending_reconcile"] == 0
        for key, value in (("a", 1), ("b", 2), ("c", 3), ("d", 4)):
            assert faulty.inner[key] == (_VALUE_TAG, value)

    def test_info_reports_unavailable_but_keeps_local_state(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data)
        store._data = faulty
        store.get_or_compute("k", lambda: 7)
        faulty.down()
        store.get_or_compute("dead", lambda: 8)  # opens the breaker
        info = store.info()
        assert info["available"] is False
        assert info["size"] == 0
        assert info["l1"]["size"] == 2
        assert info["resilience"]["breaker"]["state"] == BREAKER_OPEN
        assert len(store) == 2  # falls back to the L1 count

    def test_peek_and_len_degrade_quietly(self):
        store = fast_store()
        faulty = faultinject.FaultyData(store._data)
        store._data = faulty
        faulty.down()
        assert store.peek("missing") is None
        assert len(store) == 0


class TestClaimWait:
    def test_waiter_gets_anothers_published_value_with_backoff(self):
        store = fast_store(poll_interval=0.001)
        claim = ("__repro_claim__", os.getpid() + 1, 0, 0)
        store._data["k"] = claim  # another process holds the claim

        def publish_later():
            time.sleep(0.03)
            store._data["k"] = (_VALUE_TAG, 7)

        thread = threading.Thread(target=publish_later)
        thread.start()
        try:
            value = store.get_or_compute("k", lambda: pytest.fail("recomputed"))
        finally:
            thread.join()
        assert value == 7
        assert store._counters.get("waits") == 1

    def test_claim_wait_respects_the_deadline_budget(self):
        store = fast_store(claim_timeout=30.0, poll_interval=0.001)
        claim = ("__repro_claim__", os.getpid() + 1, 0, 0)
        store._data["k"] = claim  # never released
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            store.get_or_compute("k", lambda: 0, deadline=DeadlineBudget(0.05))
        # The 30s claim timeout was clamped by the 50ms budget.
        assert time.monotonic() - start < 5.0


# ---------------------------------------------------------------------------
# degraded-mode dedup across processes, fork and spawn
# ---------------------------------------------------------------------------

def _degraded_child(store, manager_dead, out):
    """Child body: compute through a store whose manager just died."""
    manager_dead.wait(30.0)
    value = store.get_or_compute(("pattern", 1), lambda: ["byte", "identical", 1])
    out.put((value, store.resilience_info()["degraded_computes"]))


class TestDegradedDedupAcrossStartMethods:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_children_keep_answering_byte_identically(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method} unavailable")
        ctx = multiprocessing.get_context(method)
        manager_dead = ctx.Event()
        out = ctx.Queue()
        with StoreManager(shared=True, policy=FAST_POLICY) as store_manager:
            store = store_manager.stores.profiles
            child = ctx.Process(
                target=_degraded_child, args=(store, manager_dead, out)
            )
            child.start()  # pickles the store while the manager is alive
            try:
                faultinject.kill_manager(store_manager)
                manager_dead.set()
                child_value, child_degraded = out.get(timeout=30.0)
            finally:
                child.join(timeout=30.0)
                if child.is_alive():  # pragma: no cover — hang diagnostics
                    child.terminate()
            assert child.exitcode == 0
            parent_value = store.get_or_compute(
                ("pattern", 1), lambda: ["byte", "identical", 1]
            )
        # Dedup is suspended (each process computed its own copy — the
        # counters say so) but the answers are byte-identical.
        assert child_value == parent_value == ["byte", "identical", 1]
        assert child_degraded == 1
        assert store.resilience_info()["degraded_computes"] == 1


# ---------------------------------------------------------------------------
# the full service: kill, flake and stall the manager under real batches
# ---------------------------------------------------------------------------

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="deterministic fault injection requires the fork start method",
)


class TestServiceFaultMatrix:
    def test_injected_proxy_errors_converge(self, scenario, reference):
        """Transient store flakes: retried through, answers identical."""
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), shared=False
        ) as service:
            store = service.stores.profiles
            store._data = faultinject.FaultyData(store._data, failures=2)
            results = service.evaluate(scenario.queries)
            stats = service.stats()
        assert triples(results) == triples(reference)
        resilience = stats["stores"]["profiles"]["resilience"]
        assert resilience["retries"] >= 1
        assert resilience["breaker"]["state"] == BREAKER_CLOSED
        # The retry count is scraped through the metrics registry too.
        retry_metric = stats["metrics"]["repro_store_resilience_counter"]["samples"]
        assert retry_metric['{store="profiles",counter="retries"}'] >= 1.0

    def test_latency_spike_converges_within_bounded_time(self, scenario, reference):
        with QueryService(
            scenario.database,
            executor=ExecutorConfig(workers=1),
            shared=False,
            batch_deadline_seconds=60.0,
        ) as service:
            store = service.stores.profiles
            store._data = faultinject.FaultyData(
                store._data, latency_seconds=0.002, latency_ops=20
            )
            start = time.monotonic()
            results = service.evaluate(scenario.queries)
            elapsed = time.monotonic() - start
        assert triples(results) == triples(reference)
        assert elapsed < 60.0

    def test_full_outage_serves_degraded_but_identical(self, scenario, reference):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), shared=False
        ) as service:
            store = service.stores.profiles
            faulty = faultinject.FaultyData(store._data)
            store._data = faulty
            faulty.down()
            results = service.evaluate(scenario.queries)
            stats = service.stats()
        assert triples(results) == triples(reference)
        resilience = stats["stores"]["profiles"]["resilience"]
        assert resilience["degraded_computes"] >= 1
        assert resilience["breaker"]["state"] == BREAKER_OPEN
        breaker_metric = stats["metrics"]["repro_store_breaker_state"]["samples"]
        assert breaker_metric['{store="profiles"}'] == 2.0

    def test_tiny_batch_deadline_raises_and_counts(self, scenario):
        with QueryService(
            scenario.database,
            executor=ExecutorConfig(workers=1),
            shared=False,
            batch_deadline_seconds=1e-9,
        ) as service:
            with pytest.raises(DeadlineExceededError):
                service.evaluate(scenario.queries)
            stats = service.stats()
        assert stats["metrics"]["repro_deadline_exceeded_total"]["samples"][""] == 1.0

    def test_invalid_batch_deadline_rejected(self, scenario):
        with pytest.raises(ValueError):
            QueryService(scenario.database, batch_deadline_seconds=0.0)


@_FORK_ONLY
class TestManagerFailover:
    def test_kill_between_batches_fails_over_and_converges(
        self, scenario, reference
    ):
        with QueryService(
            scenario.database, executor=parallel_config()
        ) as service:
            warm = service.evaluate(scenario.queries, mode="parallel")
            assert triples(warm) == triples(reference)
            faultinject.kill_manager(service._store_manager)
            results = service.evaluate(scenario.queries, mode="parallel")
            stats = service.stats()
        assert triples(results) == triples(reference)
        monitor = stats["monitor"]
        assert monitor["failovers"] == 1
        assert monitor["failover_events"][0]["generation"] == 1
        assert stats["metrics"]["repro_store_failovers_total"]["samples"][""] == 1.0
        # The replacement backend answered the post-failover batch.
        assert stats["stores"]["profiles"]["available"] is True
        breaker_metric = stats["metrics"]["repro_store_breaker_state"]["samples"]
        assert breaker_metric['{store="profiles"}'] == 0.0

    def test_kill_mid_batch_degrades_then_fails_over(self, scenario, reference):
        """The hardest row of the failure-mode table.

        A worker SIGKILLs the manager at a chunk start, so the rest of
        the batch runs against dead proxies — every store call inside
        workers must degrade locally and the batch must still match the
        reference.  The next batch boundary detects the corpse, fails
        over, restarts the pool, and matches the reference again.
        """
        with faultinject.chunk_fault(faultinject.kill_manager_action) as flags:
            with QueryService(
                scenario.database, executor=parallel_config()
            ) as service:
                flags["manager_pid"] = service._store_manager.manager_pid()
                mid_kill = service.evaluate(scenario.queries, mode="parallel")
                assert not service._store_manager.manager_alive()
                recovered = service.evaluate(scenario.queries, mode="parallel")
                stats = service.stats()
            assert "armed" not in flags, "the manager kill never fired"
        assert triples(mid_kill) == triples(reference)
        assert triples(recovered) == triples(reference)
        assert stats["monitor"]["failovers"] == 1
        assert stats["stores"]["profiles"]["available"] is True

    def test_failover_preserves_the_planner_hot_swap(self, scenario):
        """A config hot-swapped before the kill must survive into the
        replacement manager's control slot (republish_planner)."""
        from dataclasses import replace

        with QueryService(
            scenario.database, executor=parallel_config()
        ) as service:
            service.evaluate(scenario.queries, mode="parallel")
            swapped = replace(service.planner, mode="cost")
            service._apply_planner(swapped, None)
            version = service.planner_version
            assert version == 1
            faultinject.kill_manager(service._store_manager)
            service.evaluate(scenario.queries, mode="parallel")
            entry = service.stores.control.get("planner")
        assert entry is not None
        assert entry[0] == version
        assert entry[1].mode == "cost"

    def test_local_stores_never_fail_over(self, scenario):
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), shared=False
        ) as service:
            assert service._store_manager.manager_pid() is None
            assert service._store_manager.manager_alive()
            assert not service.check_store_health()
            service.evaluate(scenario.queries)
            assert service.stats()["monitor"]["failovers"] == 0
