"""Tests for conjunctive queries, the parser, databases and EVAL(Φ)."""

import pytest

from repro.classification import ComplexityDegree
from repro.cq import (
    ConjunctiveQuery,
    Database,
    QueryAtom,
    classify_query_set,
    evaluate_query_set,
    parse_query,
)
from repro.exceptions import FormulaError, StructureError, VocabularyError
from repro.homomorphism import count_homomorphisms, has_homomorphism
from repro.structures import Vocabulary, are_isomorphic, cycle, path


class TestDatabase:
    def test_tables_and_domain(self):
        database = Database({"E": [(1, 2), (2, 3)], "Label": [("a",)]})
        assert database.arity("E") == 2
        assert database.arity("Label") == 1
        assert database.number_of_rows() == 3
        assert {1, 2, 3, "a"} <= set(database.domain)

    def test_inconsistent_rows_rejected(self):
        with pytest.raises(StructureError):
            Database({"E": [(1, 2), (1,)]})

    def test_empty_database_rejected(self):
        with pytest.raises(StructureError):
            Database({})

    def test_structure_roundtrip(self):
        database = Database({"E": [(1, 2), (2, 1)]})
        structure = database.to_structure()
        assert Database.from_structure(structure).table("E") == sorted(
            structure.relation("E"), key=repr
        )

    def test_to_structure_with_explicit_vocabulary(self):
        database = Database({"E": [(1, 2)]})
        query = parse_query("E(x, y), F(y)")
        structure = database.to_structure(query.vocabulary())
        assert structure.relation("F") == frozenset()
        assert structure.relation("E") == frozenset({(1, 2)})
        # Tables absent from the supplied schema are dropped, not rejected.
        restricted = database.to_structure(query.vocabulary().restrict(["F"]))
        assert restricted.relation("F") == frozenset()
        # Arity clashes are still an error.
        with pytest.raises(VocabularyError):
            database.to_structure(Vocabulary({"E": 3}))

    def test_unknown_table(self):
        with pytest.raises(VocabularyError):
            Database({"E": [(1, 2)]}).table("F")


class TestConjunctiveQuery:
    def test_triangle_query(self):
        query = ConjunctiveQuery([("E", ("x", "y")), ("E", ("y", "z")), ("E", ("z", "x"))])
        assert len(query.variables) == 3
        # The atoms are directed, so the canonical structure is the directed triangle.
        from repro.structures import directed_cycle

        assert are_isomorphic(query.canonical_structure(), directed_cycle(3))

    def test_query_from_structure_roundtrip(self):
        query = ConjunctiveQuery.from_structure(path(4))
        assert are_isomorphic(query.canonical_structure(), path(4))

    def test_holds_on_database(self):
        query = parse_query("E(x, y), E(y, z), E(z, x)")
        triangle_db = Database({"E": [(1, 2), (2, 3), (3, 1)]})
        square_db = Database({"E": [(1, 2), (2, 3), (3, 4), (4, 1)]})
        assert query.holds_on(triangle_db)
        assert not query.holds_on(square_db)

    def test_count_matches(self):
        query = parse_query("E(x, y)")
        database = Database({"E": [(1, 2), (2, 3), (3, 1)]})
        assert query.count_matches(database) == 3

    def test_holds_on_structure_directly(self):
        query = parse_query("E(x, y), E(y, z)")
        assert query.holds_on(cycle(4)) == has_homomorphism(
            query.canonical_structure(), cycle(4)
        )

    def test_to_sentence_quantifier_rank(self):
        query = parse_query("E(x, y), E(y, z)")
        assert query.to_sentence().quantifier_rank() == 3

    def test_classify(self):
        profile = parse_query("E(x, y), E(y, z), E(z, x)").classify()
        assert profile.core_treewidth == 2

    def test_inconsistent_arity_rejected(self):
        query = ConjunctiveQuery([("R", ("x", "y")), ("R", ("x",))])
        with pytest.raises(FormulaError):
            query.vocabulary()

    def test_needs_a_variable(self):
        with pytest.raises(FormulaError):
            ConjunctiveQuery([])


class TestParser:
    def test_basic_forms(self):
        assert len(parse_query("E(x,y), E(y,z)").atoms) == 2
        assert len(parse_query("exists x y z . E(x,y) & E(y,z)").variables) == 3
        assert len(parse_query("∃x,y : R(x, y, y)").atoms) == 1

    def test_prefix_introduces_isolated_variables(self):
        query = parse_query("exists x y w . E(x, y)")
        assert "w" in query.variables
        assert len(query.canonical_structure()) == 3

    def test_garbage_rejected(self):
        with pytest.raises(FormulaError):
            parse_query("E(x,y) or E(y,z)")
        with pytest.raises(FormulaError):
            parse_query("")
        with pytest.raises(FormulaError):
            parse_query("E()")

    def test_parse_matches_manual_construction(self):
        parsed = parse_query("E(a, b), E(b, c)")
        manual = ConjunctiveQuery([QueryAtom("E", ("a", "b")), QueryAtom("E", ("b", "c"))])
        assert are_isomorphic(parsed.canonical_structure(), manual.canonical_structure())


class TestQuerySetEvaluation:
    def test_evaluate_query_set(self):
        queries = [
            parse_query("E(x, y)"),
            parse_query("E(x, y), E(y, z), E(z, x)"),
        ]
        database = Database({"E": [(1, 2), (2, 3), (3, 1)]})
        results = evaluate_query_set(queries, database)
        assert [result.answer for _, result in results] == [True, True]
        square = Database({"E": [(1, 2), (2, 3), (3, 4), (4, 1)]})
        results = evaluate_query_set(queries, square)
        assert [result.answer for _, result in results] == [True, False]

    def test_classify_query_set(self):
        # Path-shaped queries of growing length: the degree is PATH-complete
        # only for the starred variants; plain path queries have edge cores.
        queries = [ConjunctiveQuery.from_structure(path(k)) for k in range(2, 7)]
        report = classify_query_set(queries)
        assert report.degree is ComplexityDegree.PARA_L
