"""Tests for the shared cross-worker stores (:mod:`repro.service.store`).

The multi-process tests run the same probe under both the ``fork`` and
``spawn`` start methods: under fork the store object reaches workers by
memory inheritance (no unpickling), under spawn by pickling — the claim
protocol must deliver exactly-once computes either way (the fork path is
exactly where a construction-time claim token would break).
"""

import pickle
import threading
import time

import pytest

from repro.service.store import ServiceStores, SharedStore, StoreManager, TelemetrySink

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ---------------------------------------------------------------------------
# module-level probes (spawn pickles them by reference)
# ---------------------------------------------------------------------------

def _probe(args):
    """Hammer the store: compute-or-get every key, return observed values."""
    store, keys, delay = args
    out = {}
    for key in keys:
        out[key] = store.get_or_compute(key, lambda k=key: _slow_value(k, delay))
    return out


def _slow_value(key, delay):
    import os

    time.sleep(delay)
    return (key, os.getpid())


def _run_pool(method, store, keys, tasks=4, workers=2, delay=0.01):
    import multiprocessing

    context = multiprocessing.get_context(method)
    with context.Pool(processes=workers) as pool:
        results = pool.map(_probe, [(store, keys, delay)] * tasks)
    return results


# ---------------------------------------------------------------------------
# single-process semantics
# ---------------------------------------------------------------------------

class TestLocalStore:
    def test_compute_once_then_hits(self):
        store = SharedStore.local()
        calls = []
        for _ in range(3):
            value = store.get_or_compute("k", lambda: calls.append(1) or "v")
            assert value == "v"
        assert len(calls) == 1
        info = store.info()
        assert info["computes"] == 1
        # The first lookup misses, the rest are L1 hits (not shared hits).
        assert info["misses"] == 1
        assert info["l1"]["hits"] == 2

    def test_peek_never_computes(self):
        store = SharedStore.local()
        assert store.peek("absent") is None
        store.put("k", 42)
        assert store.peek("k") == 42
        assert store.info()["computes"] == 0

    def test_shared_level_eviction_at_capacity(self):
        store = SharedStore.local(capacity=3, l1_capacity=1)
        for i in range(5):
            store.get_or_compute(i, lambda i=i: i * 10)
        info = store.info()
        assert info["size"] == 3
        assert info["evictions"] == 2
        # Evicted keys recompute; survivors are served from the store.
        assert store.get_or_compute(4, lambda: -1) == 40

    def test_eviction_never_removes_live_claims(self):
        store = SharedStore.local(capacity=2, l1_capacity=1)
        # A claim in flight (as another process would leave mid-compute).
        claim = store._new_claim()
        store._data.setdefault("claimed", claim)
        store.get_or_compute("a", lambda: 1)
        store.get_or_compute("b", lambda: 2)  # over capacity: must evict a value
        assert store._data.get("claimed") == claim
        assert store.info()["evictions"] >= 1

    def test_eviction_tolerates_all_claim_contents(self):
        store = SharedStore.local(capacity=1, l1_capacity=1)
        store._data.setdefault("c1", store._new_claim())
        # Publishing with only claims present exceeds the bound
        # transiently instead of breaking the protocol.
        store.put("k", "v")
        assert store.peek("k") == "v"
        assert "c1" in store._data

    def test_compute_exception_releases_claim(self):
        store = SharedStore.local()
        with pytest.raises(RuntimeError):
            store.get_or_compute("k", self._boom)
        # The key is claimable again immediately, not wedged.
        assert store.get_or_compute("k", lambda: "ok") == "ok"

    @staticmethod
    def _boom():
        raise RuntimeError("compute failed")

    def test_publish_failure_releases_claim(self, monkeypatch):
        # Regression: the claim used to be released only when compute()
        # raised.  A failure *after* compute — the publish itself dying
        # on a manager hiccup — left the claim in place, stalling every
        # waiter for the full claim timeout.
        store = SharedStore.local()

        def doomed_publish(key, value):
            raise ConnectionError("manager went away")

        monkeypatch.setattr(store, "_publish", doomed_publish)
        with pytest.raises(ConnectionError):
            store.get_or_compute("k", lambda: "v")
        # No stranded claim: the key is immediately reclaimable.
        assert "k" not in store._data
        monkeypatch.undo()
        assert store.get_or_compute("k", lambda: "ok") == "ok"

    def test_publish_failure_unblocks_waiting_thread_quickly(self):
        store = SharedStore.local()
        original_publish = store._publish
        release = threading.Event()

        def slow_doomed_publish(key, value):
            release.wait(5.0)
            raise ConnectionError("manager went away")

        store._publish = slow_doomed_publish
        owner_error = []

        def owner():
            try:
                store.get_or_compute("k", lambda: "v")
            except ConnectionError:
                owner_error.append(1)

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        time.sleep(0.05)  # let the owner claim the key
        store._publish = original_publish
        waiter_result = []
        waiter = threading.Thread(
            target=lambda: waiter_result.append(
                store.get_or_compute("k", lambda: "recomputed")
            )
        )
        start = time.monotonic()
        waiter.start()
        release.set()
        owner_thread.join(5.0)
        waiter.join(5.0)
        elapsed = time.monotonic() - start
        assert owner_error == [1]
        # The waiter recomputes as soon as the claim is released — far
        # inside the 30 s claim timeout it used to burn entirely.
        assert waiter_result == ["recomputed"]
        assert elapsed < 10.0

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ValueError):
            SharedStore.local(capacity=0)

    def test_concurrent_threads_share_one_compute(self):
        store = SharedStore.local()
        computes = []

        def compute():
            computes.append(1)
            time.sleep(0.05)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(store.get_or_compute("k", compute))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["value"] * 4
        assert len(computes) == 1
        assert store.info()["waits"] == 3


class TestPickling:
    def test_pickled_managed_store_shares_level_but_not_l1(self):
        with StoreManager(shared=True) as manager:
            store = manager.stores.profiles
            store.get_or_compute("k", lambda: "v")
            assert store.info()["l1"]["size"] == 1
            clone = pickle.loads(pickle.dumps(store))
            # Fresh private L1, same live shared level.
            assert clone.info()["l1"]["size"] == 0
            assert clone.peek("k") == "v"
            clone.put("k2", "w")
            assert store.peek("k2") == "w"


class TestTelemetrySink:
    def test_record_and_drain(self):
        sink = TelemetrySink.local()
        sink.record([1, 2])
        sink.record([])  # no-op
        sink.record([3])
        assert sink.drain() == [1, 2, 3]
        assert len(sink) == 3

    def test_bounded_retention_drops_oldest_batches(self):
        sink = TelemetrySink.local(max_batches=2)
        for batch in ([1], [2], [3], [4]):
            sink.record(batch)
        assert sink.drain() == [3, 4]

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySink.local(max_batches=0)

    def test_record_holds_the_sink_lock_across_append_and_trim(self):
        # Regression: append + trim used to run without the sink lock, so
        # two recorders trimming on a stale len() could over-pop or race
        # pop(0) into an IndexError on the manager proxy.
        sink = TelemetrySink.local(max_batches=2)
        acquisitions = []
        real_lock = sink._lock

        class SpyLock:
            def __enter__(self):
                acquisitions.append(1)
                return real_lock.__enter__()

            def __exit__(self, *exc):
                return real_lock.__exit__(*exc)

        sink._lock = SpyLock()
        sink.record([1])
        assert acquisitions == [1]
        sink.record([])  # empty batch never touches the lock
        assert acquisitions == [1]

    def test_concurrent_recorders_never_underflow_the_bound(self):
        sink = TelemetrySink.local(max_batches=8)
        barrier = threading.Barrier(4)
        errors = []

        def recorder(worker):
            try:
                barrier.wait()
                for i in range(50):
                    sink.record([worker * 1000 + i])
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=recorder, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Exactly at the bound: no over-popping from stale len() reads.
        assert len(sink._batches) == 8

    def test_service_stores_info_shape(self):
        stores = ServiceStores(
            profiles=SharedStore.local(), answers=None, telemetry=TelemetrySink.local()
        )
        info = stores.info()
        assert info["answers"] is None
        assert info["profiles"]["computes"] == 0
        assert info["telemetry_samples"] == 0


# ---------------------------------------------------------------------------
# multi-process semantics, fork and spawn
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("method", ["fork", "spawn"])
class TestMultiProcess:
    def test_exactly_once_compute_per_distinct_key(self, method):
        with StoreManager(shared=True) as manager:
            store = manager.stores.profiles
            keys = [f"key{i}" for i in range(8)]
            results = _run_pool(method, store, keys)
            info = store.info()
            # The dedup guarantee: one compute per distinct key for the
            # whole store lifetime, across every worker and task.
            assert info["computes"] == len(keys), info
            assert info["size"] == len(keys)
            # Every caller observed the same value per key (the value
            # records the pid that computed it, so equality means the
            # losers really consumed the winner's result).
            merged = {}
            for result in results:
                for key, value in result.items():
                    assert merged.setdefault(key, value) == value

    def test_eviction_is_visible_across_processes(self, method):
        with StoreManager(shared=True) as manager:
            # Shrink the shared level so the second wave must evict.
            store = manager.stores.profiles
            store._capacity = 4
            _run_pool(method, store, [f"a{i}" for i in range(4)], tasks=1, workers=2)
            _run_pool(method, store, [f"b{i}" for i in range(4)], tasks=1, workers=2)
            info = store.info()
            assert info["size"] <= 4
            assert info["evictions"] >= 4

    def test_telemetry_sink_collects_from_workers(self, method):
        with StoreManager(shared=True) as manager:
            sink = manager.stores.telemetry
            _run_sink_pool(method, sink)
            samples = sink.drain()
            assert sorted(samples) == [0, 1, 2, 3]


def _sink_probe(args):
    sink, payload = args
    sink.record(payload)
    return True


def _run_sink_pool(method, sink):
    import multiprocessing

    context = multiprocessing.get_context(method)
    with context.Pool(processes=2) as pool:
        pool.map(_sink_probe, [(sink, [0, 1]), (sink, [2, 3])])
