"""Tests for the first-order logic substrate: formulas, model checking,
Chandra–Merlin translations and tree-depth sentences."""

import pytest

from repro.exceptions import FormulaError
from repro.homomorphism import core, has_homomorphism
from repro.logic import (
    And,
    Atom,
    Equality,
    Exists,
    ForAll,
    Formula,
    ModelChecker,
    Not,
    Or,
    TRUE,
    big_and,
    canonical_conjunction,
    canonical_query,
    canonical_structure,
    exists_many,
    model_check,
    model_check_with_statistics,
    prenex_atoms,
    query_holds,
    sentence_corresponds,
    sentence_from_forest,
    sentence_variable_forest,
    treedepth_bound_from_sentence,
    treedepth_sentence,
    variable_for,
)
from repro.decomposition import exact_elimination_forest, exact_treedepth
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    clique,
    cycle,
    gaifman_graph,
    path,
    random_graph_structure,
    star,
)


class TestFormulas:
    def test_quantifier_rank(self):
        formula = Exists("x", ForAll("y", Atom("E", ("x", "y"))))
        assert formula.quantifier_rank() == 2
        assert And((formula, Atom("E", ("z", "z")))).quantifier_rank() == 2

    def test_free_variables(self):
        formula = Exists("x", Atom("E", ("x", "y")))
        assert formula.free_variables() == frozenset({"y"})
        assert not formula.is_sentence()
        assert Exists("y", formula).is_sentence()

    def test_existential_conjunctive_fragment(self):
        good = Exists("x", And((Atom("E", ("x", "x")),)))
        assert good.is_existential_conjunctive()
        bad = Exists("x", Not(Atom("E", ("x", "x"))))
        assert not bad.is_existential_conjunctive()
        with_equality = Exists("x", Equality("x", "x"))
        assert not with_equality.is_existential_conjunctive()

    def test_helpers(self):
        formula = exists_many(["x", "y"], big_and([Atom("E", ("x", "y"))]))
        assert formula.quantifier_rank() == 2
        assert formula.size() >= 3
        assert TRUE.is_sentence()

    def test_atom_requires_relation(self):
        with pytest.raises(FormulaError):
            Atom("", ("x",))


class TestModelChecking:
    def test_edge_sentence(self):
        sentence = exists_many(["x", "y"], Atom("E", ("x", "y")))
        assert model_check(cycle(3), sentence)
        edgeless = Structure(GRAPH_VOCABULARY, [1, 2], {})
        assert not model_check(edgeless, sentence)

    def test_universal_sentence(self):
        # "every vertex has a neighbour" holds in cycles.
        sentence = ForAll("x", Exists("y", Atom("E", ("x", "y"))))
        assert model_check(cycle(4), sentence)
        lonely = Structure(GRAPH_VOCABULARY, [1, 2, 3], {"E": [(1, 2), (2, 1)]})
        assert not model_check(lonely, sentence)

    def test_negation_and_equality(self):
        # "there are two distinct adjacent vertices".
        sentence = exists_many(
            ["x", "y"], And((Atom("E", ("x", "y")), Not(Equality("x", "y"))))
        )
        assert model_check(path(2), sentence)

    def test_free_variable_requires_assignment(self):
        checker = ModelChecker(cycle(3))
        with pytest.raises(FormulaError):
            checker.check_sentence(Atom("E", ("x", "y")))
        assert checker.check(Atom("E", ("x", "y")), {"x": 1, "y": 2})

    def test_statistics_respect_lemma_311_bounds(self):
        sentence = canonical_query(path(4))
        result, statistics = model_check_with_statistics(cycle(6), sentence)
        assert result is True
        assert statistics.max_live_bindings <= sentence.quantifier_rank()
        assert statistics.max_recursion_depth <= sentence.size()
        assert statistics.estimated_space_bits > 0


class TestChandraMerlin:
    def test_canonical_query_equals_homomorphism(self):
        for pattern in [path(3), cycle(3), star(3)]:
            for seed in range(3):
                target = random_graph_structure(5, 0.5, seed)
                assert query_holds(pattern, target) == has_homomorphism(pattern, target)

    def test_canonical_structure_roundtrip(self):
        sentence = canonical_query(cycle(3))
        rebuilt = canonical_structure(sentence, GRAPH_VOCABULARY)
        # The rebuilt structure is isomorphic to the original (variables renamed).
        from repro.structures import are_isomorphic

        assert are_isomorphic(rebuilt, cycle(3))

    def test_canonical_structure_rejects_non_cq(self):
        with pytest.raises(FormulaError):
            canonical_structure(Not(Atom("E", ("x", "x"))), GRAPH_VOCABULARY)
        with pytest.raises(FormulaError):
            canonical_structure(Atom("E", ("x", "y")), GRAPH_VOCABULARY)

    def test_prenex_atoms(self):
        variables, atoms = prenex_atoms(canonical_query(path(3)))
        assert len(variables) == 3
        assert len(atoms) == len(path(3).relation("E"))

    def test_canonical_conjunction_variables(self):
        conjunction = canonical_conjunction(path(2))
        assert variable_for(1) in conjunction.free_variables()


class TestTreeDepthSentences:
    @pytest.mark.parametrize("pattern", [path(4), path(6), star(3), cycle(5)])
    def test_sentence_corresponds_to_structure(self, pattern):
        sentence = treedepth_sentence(pattern)
        targets = [random_graph_structure(5, p, seed) for seed, p in enumerate([0.3, 0.5, 0.7])]
        targets.append(cycle(6))
        targets.append(clique(3))
        assert sentence_corresponds(pattern, sentence, targets)

    def test_quantifier_rank_bounded_by_treedepth(self):
        for pattern in [path(5), star(4), cycle(5)]:
            sentence = treedepth_sentence(pattern)
            bound = exact_treedepth(gaifman_graph(core(pattern))) + 1
            assert sentence.quantifier_rank() <= bound

    def test_sentence_is_existential_conjunctive(self):
        assert treedepth_sentence(path(5)).is_existential_conjunctive()

    def test_sentence_from_explicit_forest(self):
        pattern = cycle(5)
        forest = exact_elimination_forest(gaifman_graph(pattern))
        sentence = sentence_from_forest(pattern, forest)
        assert sentence.quantifier_rank() == forest.height()

    def test_forest_mismatch_rejected(self):
        forest = exact_elimination_forest(gaifman_graph(path(4)))
        with pytest.raises(FormulaError):
            sentence_from_forest(cycle(5), forest)

    def test_theorem_312_backward_direction(self):
        """The quantifier-nesting depth of φ_A bounds td(core(A)) (Theorem 3.12)."""
        for pattern in [path(6), cycle(5), star(4)]:
            sentence = treedepth_sentence(pattern)
            chain = treedepth_bound_from_sentence(sentence)
            td = exact_treedepth(gaifman_graph(core(pattern)))
            assert td <= chain <= sentence.quantifier_rank()

    def test_variable_forest_shape(self):
        sentence = treedepth_sentence(path(4))
        forest = sentence_variable_forest(sentence)
        assert "" in forest and forest[""], "sentence should quantify at least one root variable"
