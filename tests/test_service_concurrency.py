"""Thread-stress tests for the shared in-process primitives.

:class:`BoundedLRU` backs the plan cache and the store L1s;
:class:`TelemetrySink` (local form) takes concurrent records from the
front-end and the monitor thread.  Both claim thread safety — these
tests hammer them from many threads and check the structural
invariants afterwards (no exception, bounds respected, nothing lost
that could not legally be evicted/dropped).
"""

import random
import threading

import pytest

from repro.caching import BoundedLRU
from repro.service import TelemetrySink


def run_threads(worker, count):
    """Start ``count`` threads running ``worker(index)``; re-raise any
    exception a thread died with."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover — failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestBoundedLRUThreadStress:
    THREADS = 8
    OPS = 400

    def test_mixed_operations_keep_invariants(self):
        cache = BoundedLRU(capacity=32)

        def worker(index):
            rng = random.Random(1000 + index)
            for op in range(self.OPS):
                key = rng.randrange(64)
                choice = rng.randrange(5)
                if choice == 0:
                    cache.put(key, (index, op))
                elif choice == 1:
                    cache.get(key)
                elif choice == 2:
                    cache.peek(key)
                elif choice == 3:
                    value = cache.get_or_put(key, lambda: (index, op))
                    assert value is not None
                else:
                    key in cache  # noqa: B015 — exercising __contains__

        run_threads(worker, self.THREADS)
        assert len(cache) <= 32
        # The snapshot is internally consistent after the storm.
        keys = cache.keys()
        assert len(keys) == len(set(keys)) == len(cache)
        for key in keys:
            assert key in cache
        info = cache.info()
        assert info["size"] == len(cache)
        assert info["hits"] + info["misses"] > 0

    def test_no_put_lost_below_capacity(self):
        """Distinct keys from many threads, total under capacity: eviction
        never fires, so every put must be visible at the end."""
        threads, per_thread = 8, 20
        cache = BoundedLRU(capacity=threads * per_thread)

        def worker(index):
            for i in range(per_thread):
                cache.put((index, i), index)

        run_threads(worker, threads)
        assert len(cache) == threads * per_thread
        for index in range(threads):
            for i in range(per_thread):
                assert cache.peek((index, i)) == index

    def test_concurrent_clear_is_safe(self):
        cache = BoundedLRU(capacity=16)

        def worker(index):
            for op in range(200):
                if index == 0 and op % 50 == 0:
                    cache.clear()
                else:
                    cache.put(op % 24, op)
                    cache.get(op % 24)

        run_threads(worker, 4)
        assert len(cache) <= 16

    def test_eviction_order_is_lru_single_threaded(self):
        """The recency contract the stress test cannot see: ``get``
        refreshes, ``peek`` does not, ``keys()`` is coldest-first."""
        cache = BoundedLRU(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # refresh: "b" is now coldest
        cache.peek("b")  # must NOT refresh
        assert cache.keys() == ["b", "c", "a"]
        cache.put("d", 4)  # evicts the coldest: "b"
        assert "b" not in cache
        assert set(cache.keys()) == {"c", "a", "d"}


class TestTelemetrySinkThreadStress:
    def test_concurrent_records_all_retained_when_unbounded_enough(self):
        threads, per_thread = 8, 50
        sink = TelemetrySink.local(max_batches=threads * per_thread)

        def worker(index):
            for i in range(per_thread):
                sink.record([(index, i), (index, i, "b")])

        run_threads(worker, threads)
        drained = sink.drain()
        assert len(drained) == threads * per_thread * 2
        assert len(sink) == len(drained)
        # Exactly the recorded samples, each exactly once.
        pairs = [s for s in drained if len(s) == 2]
        assert sorted(pairs) == sorted(
            (index, i) for index in range(threads) for i in range(per_thread)
        )

    def test_bounded_sink_drops_only_oldest_batches(self):
        sink = TelemetrySink.local(max_batches=8)

        def worker(index):
            for i in range(100):
                sink.record([(index, i)])

        run_threads(worker, 4)
        assert len(sink) <= 8
        # Per-thread sequence numbers of the survivors are each thread's
        # most recent — a dropped batch is always older than a retained
        # one from the same thread.
        survivors = {}
        for index, i in sink.drain():
            survivors.setdefault(index, []).append(i)
        for index, seen in survivors.items():
            assert seen == sorted(seen)
            assert max(seen) >= 100 - 8 - 1

    def test_empty_record_is_a_noop(self):
        sink = TelemetrySink.local(max_batches=4)
        sink.record([])
        assert len(sink) == 0
        assert sink.drain() == []

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySink.local(max_batches=0)
