"""Tests for the named structure families and structural operations."""

import pytest

from repro.exceptions import StructureError, VocabularyError
from repro.graphlib import is_connected, is_cycle_graph, is_path_graph, is_tree
from repro.structures import (
    b_structure,
    binary_strings,
    bounded_depth_tree_graph,
    caterpillar_graph,
    clique_graph,
    complete_binary_tree_graph,
    cycle,
    cycle_graph,
    digraph_structure,
    direct_product,
    directed_b_structure,
    directed_cycle,
    directed_path,
    disjoint_union,
    grid_graph,
    graph_structure,
    is_star_expansion,
    path,
    path_graph,
    star_expansion,
    star_graph,
    strip_star_expansion,
    structure_digraph,
    structure_graph,
    symmetric_closure,
    tree_structure_from_parent,
)


class TestBuilders:
    def test_directed_path_arcs(self):
        structure = directed_path(4)
        assert structure.relation("E") == frozenset({(1, 2), (2, 3), (3, 4)})

    def test_path_is_symmetric(self):
        structure = path(4)
        assert (1, 2) in structure.relation("E") and (2, 1) in structure.relation("E")
        assert is_path_graph(structure_graph(structure))

    def test_cycle_shapes(self):
        assert is_cycle_graph(structure_graph(cycle(5)))
        assert directed_cycle(3).relation("E") == frozenset({(1, 2), (2, 3), (3, 1)})

    def test_binary_strings(self):
        assert set(binary_strings(1)) == {"", "0", "1"}
        assert len(binary_strings(3)) == 2 ** 4 - 1

    def test_b_structures(self):
        directed = directed_b_structure(2)
        assert ("", "0") in directed.relation("S0")
        assert ("0", "") not in directed.relation("S0")
        symmetric = b_structure(2)
        assert ("0", "") in symmetric.relation("S0")
        assert len(symmetric) == 7

    def test_complete_binary_tree(self):
        graph = complete_binary_tree_graph(3)
        assert is_tree(graph)
        assert len(graph) == 15

    def test_grid_and_clique(self):
        grid = grid_graph(3, 4)
        assert len(grid) == 12
        assert grid.has_edge((0, 0), (0, 1)) and grid.has_edge((0, 0), (1, 0))
        clique = clique_graph(4)
        assert clique.number_of_edges() == 6

    def test_star_and_caterpillar(self):
        assert star_graph(5).degree(0) == 5
        caterpillar = caterpillar_graph(4, 2)
        assert is_tree(caterpillar)
        assert len(caterpillar) == 4 + 8

    def test_bounded_depth_tree(self):
        graph = bounded_depth_tree_graph(2, 3)
        assert is_tree(graph)
        assert len(graph) == 1 + 3 + 9

    def test_tree_from_parent_array(self):
        structure = tree_structure_from_parent([0, 0, 0, 1])
        assert is_tree(structure_graph(structure))
        with pytest.raises(StructureError):
            tree_structure_from_parent([0, 2])

    def test_graph_structure_roundtrip(self):
        graph = cycle_graph(5)
        assert structure_graph(graph_structure(graph)) == graph

    def test_digraph_structure_roundtrip(self):
        structure = directed_cycle(4)
        assert digraph_structure(structure_digraph(structure)) == structure

    def test_invalid_sizes(self):
        with pytest.raises(StructureError):
            directed_path(0)
        with pytest.raises(StructureError):
            cycle(2)
        with pytest.raises(StructureError):
            grid_graph(0, 3)


class TestOperations:
    def test_star_expansion_colors(self):
        starred = star_expansion(path(3))
        assert is_star_expansion(starred)
        assert len(starred.vocabulary) == 1 + 3
        recovered = strip_star_expansion(starred)
        assert recovered == path(3)

    def test_star_expansion_is_core(self):
        from repro.homomorphism import is_core

        assert is_core(star_expansion(path(4)))

    def test_double_star_expansion_rejected(self):
        with pytest.raises(VocabularyError):
            star_expansion(star_expansion(path(2)))

    def test_direct_product_counts(self):
        product = direct_product(path(2), path(3))
        assert len(product) == 6
        # Edges of the product: pairs of edges, one from each factor.
        assert len(product.relation("E")) == len(path(2).relation("E")) * len(
            path(3).relation("E")
        )

    def test_direct_product_requires_same_vocabulary(self):
        with pytest.raises(VocabularyError):
            direct_product(path(2), b_structure(1))

    def test_disjoint_union(self):
        union = disjoint_union([path(2), path(3)])
        assert len(union) == 5
        assert ((0, 1), (0, 2)) in union.relation("E")
        with pytest.raises(StructureError):
            disjoint_union([])

    def test_symmetric_closure(self):
        closed = symmetric_closure(directed_path(3))
        assert (2, 1) in closed.relation("E")

    def test_product_homomorphism_projections(self):
        """Both projections of a direct product are homomorphisms."""
        from repro.homomorphism import is_homomorphism

        product = direct_product(cycle(3), cycle(3))
        first = {pair: pair[0] for pair in product.universe}
        second = {pair: pair[1] for pair in product.universe}
        assert is_homomorphism(first, product, cycle(3))
        assert is_homomorphism(second, product, cycle(3))
