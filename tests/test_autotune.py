"""Tests for the self-tuning loop (:mod:`repro.service.autotune`).

The gate that matters most here: the guard **never adopts a regressing
config** — a fitted planner that loses on measured probe timings must
be rejected with the incumbent left serving — and an adoption is an
atomic hot swap: same pool object before and after, version bumped,
the new config published to the workers' control slot.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.classification.degrees import ComplexityDegree
from repro.eval import DEFAULT_PLANNER_CONFIG, ExecutorConfig
from repro.eval.planner import plan_query, route_raw_units, route_weights
from repro.service import (
    AutoTuneConfig,
    AutoTuner,
    QueryService,
    ResidualTracker,
    SpawnOverheadTracker,
)
from repro.service.telemetry import (
    CalibrationResult,
    CalibrationState,
    RouteTimingCase,
    SolveSample,
)
from repro.workloads import scenario_by_name


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=30, seed=17)


def sample(route, raw_units, seconds):
    return SolveSample(
        route=route,
        raw_units=raw_units,
        seconds=seconds,
        core_size=2,
        universe_size=10,
        branching=1.5,
    )


class TestAutoTuneConfig:
    def test_defaults_validate(self):
        AutoTuneConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_n_solves": 0},
            {"residual_threshold": 1.0},
            {"residual_window": 1},
            {"probe_patterns": 0},
            {"cooldown_solves": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoTuneConfig(**kwargs)


class TestResidualTracker:
    ROUTE = ComplexityDegree.PARA_L.value

    def weight(self):
        return route_weights(DEFAULT_PLANNER_CONFIG)[ComplexityDegree.PARA_L]

    def test_perfect_predictions_do_not_drift(self):
        tracker = ResidualTracker(window=8)
        w = self.weight()
        tracker.consume(
            [sample(self.ROUTE, 2.0, w * 2.0) for _ in range(8)],
            DEFAULT_PLANNER_CONFIG,
        )
        assert tracker.median_factors()[self.ROUTE] == pytest.approx(1.0)
        assert tracker.drifting_routes(threshold=3.0) == []

    def test_tenfold_error_drifts_in_either_direction(self):
        w = self.weight()
        for seconds_factor in (10.0, 0.1):
            tracker = ResidualTracker(window=8)
            tracker.consume(
                [sample(self.ROUTE, 2.0, w * 2.0 * seconds_factor) for _ in range(4)],
                DEFAULT_PLANNER_CONFIG,
            )
            assert tracker.median_factors()[self.ROUTE] == pytest.approx(10.0)
            assert tracker.drifting_routes(threshold=3.0, min_points=4) == [self.ROUTE]

    def test_min_points_withholds_thin_evidence(self):
        tracker = ResidualTracker(window=8)
        tracker.consume([sample(self.ROUTE, 1.0, 100.0)], DEFAULT_PLANNER_CONFIG)
        assert tracker.drifting_routes(threshold=3.0, min_points=2) == []

    def test_window_forgets_old_regime(self):
        tracker = ResidualTracker(window=4)
        w = self.weight()
        tracker.consume(
            [sample(self.ROUTE, 1.0, w * 100.0) for _ in range(4)],
            DEFAULT_PLANNER_CONFIG,
        )
        tracker.consume(
            [sample(self.ROUTE, 1.0, w * 1.0) for _ in range(4)],
            DEFAULT_PLANNER_CONFIG,
        )
        assert tracker.median_factors()[self.ROUTE] == pytest.approx(1.0)
        assert tracker.points(self.ROUTE) == 4

    def test_unusable_samples_skipped(self):
        tracker = ResidualTracker(window=4)
        tracker.consume(
            [
                sample(self.ROUTE, 0.0, 1.0),  # no scale information
                sample(self.ROUTE, 1.0, -1.0),  # negative time
                sample("no-such-route", 1.0, 1.0),
            ],
            DEFAULT_PLANNER_CONFIG,
        )
        assert tracker.median_factors() == {}

    def test_clear_forgets_everything(self):
        tracker = ResidualTracker(window=4)
        tracker.consume([sample(self.ROUTE, 1.0, 5.0)], DEFAULT_PLANNER_CONFIG)
        tracker.clear()
        assert tracker.median_factors() == {}


class TestSpawnOverheadTracker:
    def test_first_observation_seeds_the_estimate(self):
        tracker = SpawnOverheadTracker()
        estimate = tracker.observe_parallel_batch(
            wall_seconds=1.0, solve_seconds=0.0, chunk_count=2, workers=2
        )
        assert estimate == pytest.approx(0.5)

    def test_ewma_blends_later_observations(self):
        tracker = SpawnOverheadTracker(alpha=0.3)
        tracker.observe_parallel_batch(1.0, 0.0, 2, 2)
        estimate = tracker.observe_parallel_batch(0.0, 0.0, 2, 2)
        assert estimate == pytest.approx(0.7 * 0.5)
        assert tracker.observations == 2

    def test_solve_time_is_amortised_over_workers(self):
        tracker = SpawnOverheadTracker()
        # 4 workers did 4s of solver work in 1.2s of wall time over 2
        # chunks: overhead = (1.2 - 4/4) / 2 = 0.1s per chunk.
        estimate = tracker.observe_parallel_batch(1.2, 4.0, 2, 4)
        assert estimate == pytest.approx(0.1)

    def test_overhead_never_goes_negative(self):
        tracker = SpawnOverheadTracker()
        assert tracker.observe_parallel_batch(0.1, 10.0, 1, 2) == 0.0

    def test_degenerate_inputs_leave_estimate_alone(self):
        tracker = SpawnOverheadTracker(initial=0.01)
        assert tracker.observe_parallel_batch(1.0, 0.0, 0, 2) == 0.01
        assert tracker.observe_parallel_batch(-1.0, 0.0, 1, 2) == 0.01
        assert tracker.observations == 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            SpawnOverheadTracker(alpha=0.0)


class TestGuardedRecalibration:
    """The recalibrate pass end to end, with deterministic probe timings."""

    def make_service(self, scenario, **autotune_kwargs):
        defaults = dict(
            every_n_solves=10_000,
            min_samples=1,
            cooldown_solves=0,
            probe_patterns=2,
            # The warm-up evaluate must not trip the drift trigger: the
            # manual recalibrate below has to be the only attempt.
            min_residual_points=10_000,
        )
        defaults.update(autotune_kwargs)
        return QueryService(
            scenario.database,
            executor=ExecutorConfig(workers=1),
            autotune=AutoTuneConfig(**defaults),
        )

    def probe_setup(self, service, make_fitted_pick_other_route):
        """Monkeypatch-free probe crafting: serve once, then compute a
        (cases, fitted_planner) pair from a real profile/stats pair."""
        tuner = service.autotuner
        entry = max(tuner._tracked.values(), key=lambda e: e.count)
        query = entry.query
        context = service.eval_context()
        profile = context.profile_for(query.canonical_structure())
        stats = context.stats_for(query.vocabulary())
        incumbent_degree = plan_query(profile, stats, service.planner).degree
        units = route_raw_units(profile, stats, DEFAULT_PLANNER_CONFIG)
        other = next(
            d
            for d in ComplexityDegree
            if d is not incumbent_degree and units[d] < 1e29
        )
        target = other if make_fitted_pick_other_route else incumbent_degree
        weights = {
            "treedepth_cost_weight": 1e9,
            "path_cost_weight": 1e9,
            "tree_cost_weight": 1e9,
            "backtracking_cost_weight": 1e9,
        }
        field_by_degree = {
            ComplexityDegree.PARA_L: "treedepth_cost_weight",
            ComplexityDegree.PATH_COMPLETE: "path_cost_weight",
            ComplexityDegree.TREE_COMPLETE: "tree_cost_weight",
            ComplexityDegree.W1_HARD: "backtracking_cost_weight",
        }
        weights[field_by_degree[target]] = 1e-9
        fitted = replace(DEFAULT_PLANNER_CONFIG, mode="cost", **weights)
        assert plan_query(profile, stats, fitted).degree is target
        seconds = {
            degree: (0.001 if degree is incumbent_degree else 5.0)
            for degree in ComplexityDegree
        }
        cases = [RouteTimingCase(profile, stats, seconds, weight=1)]
        return cases, fitted

    def run_recalibration(self, scenario, regressing, monkeypatch):
        import repro.service.autotune as autotune_mod

        service = self.make_service(scenario)
        with service:
            service.evaluate(scenario.queries[:10])
            tuner = service.autotuner
            cases, fitted = self.probe_setup(service, regressing)
            result = CalibrationResult(
                planner=fitted,
                spawn_cost_threshold=0.004,
                sample_count=10,
                source="fitted",
            )
            monkeypatch.setattr(tuner, "_probe_cases", lambda: (cases, []))
            monkeypatch.setattr(
                autotune_mod, "calibrate_planner", lambda *a, **k: result
            )
            incumbent = service.planner
            event = tuner.recalibrate("test")
            return service.stats(), event, service.planner, incumbent, fitted

    def test_regressing_fit_is_rejected(self, scenario, monkeypatch):
        stats, event, planner, incumbent, fitted = self.run_recalibration(
            scenario, regressing=True, monkeypatch=monkeypatch
        )
        assert event["outcome"] == "rejected"
        assert not event["guard"]["probe"]["win_or_tie"]
        assert planner is incumbent
        assert stats["planner_version"] == 0
        assert stats["metrics"]["repro_recalibrations_total"]["samples"] == {
            '{outcome="rejected"}': 1.0
        }

    def test_winning_fit_is_adopted_by_hot_swap(self, scenario, monkeypatch):
        stats, event, planner, incumbent, fitted = self.run_recalibration(
            scenario, regressing=False, monkeypatch=monkeypatch
        )
        assert event["outcome"] == "adopted"
        assert event["version"] == 1
        assert planner is fitted
        assert stats["planner_version"] == 1
        assert stats["calibration"]["source"] == "fitted"

    def test_insufficient_samples_keeps_incumbent(self, scenario):
        service = self.make_service(scenario, min_samples=10_000)
        with service:
            service.evaluate(scenario.queries[:6])
            event = service.autotuner.recalibrate("test")
            assert event["outcome"] == "insufficient-samples"
            assert service.planner_version == 0


class TestTriggers:
    def test_every_n_solves_fires_end_to_end(self, scenario):
        config = AutoTuneConfig(
            every_n_solves=6,
            min_samples=1,
            cooldown_solves=0,
            probe_patterns=2,
            min_residual_points=100,
        )
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=config
        ) as service:
            service.evaluate(scenario.queries[:12])
            tuner = service.autotuner
            assert tuner.events, "the cadence trigger never fired"
            assert tuner.events[0]["trigger"] == "every-n-solves"
            stats = service.stats()
            json.dumps(stats)
            assert stats["autotune"]["attempts"] == len(tuner.events)

    def test_cooldown_suppresses_back_to_back_refits(self, scenario):
        config = AutoTuneConfig(
            every_n_solves=5,
            min_samples=10_000,  # recalibrations stay cheap no-ops
            cooldown_solves=10_000,
            probe_patterns=1,
        )
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=config
        ) as service:
            for _ in range(3):
                service.evaluate(scenario.queries[:10])
            assert len(service.autotuner.events) == 1

    def test_residual_drift_reason(self, scenario):
        config = AutoTuneConfig(
            every_n_solves=10_000,
            min_residual_points=4,
            residual_threshold=3.0,
            cooldown_solves=0,
        )
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=config
        ) as service:
            tuner = service.autotuner
            route = ComplexityDegree.PARA_L.value
            w = route_weights(service.planner)[ComplexityDegree.PARA_L]
            tuner.residuals.consume(
                [sample(route, 1.0, w * 50.0) for _ in range(4)], service.planner
            )
            assert tuner.trigger_reason() == f"residual-drift:{route}"

    def test_pattern_tracking_is_bounded(self, scenario):
        config = AutoTuneConfig(every_n_solves=10_000, max_tracked_patterns=3)
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=config
        ) as service:
            service.evaluate(scenario.queries)
            assert len(service.autotuner._tracked) <= 3


class TestHotSwap:
    def test_swap_does_not_restart_the_pool(self, scenario):
        from repro.cq import evaluate_query_set_sequential

        reference = evaluate_query_set_sequential(scenario.queries, scenario.database)
        config = ExecutorConfig(workers=2, chunk_size=5, min_parallel_batch=1)
        with QueryService(scenario.database, executor=config) as service:
            service.evaluate(scenario.queries, mode="parallel")
            pool = service._eval._pool
            assert pool is not None
            result = service.calibrate(min_samples=1, apply=True)
            assert result.source == "fitted"
            assert service.planner_version == 1
            assert service._eval._pool is pool, "hot swap must not rebuild the pool"
            # Workers learn about the swap through the control slot.
            version, published = service.stores.control["planner"]
            assert version == 1
            assert published == service.planner
            results = service.evaluate(scenario.queries, mode="parallel")
        assert [
            (str(q), r.answer) for q, r in results
        ] == [(str(q), r.answer) for q, r in reference]

    def test_spawn_overhead_feedback_reaches_controller(self, scenario):
        config = AutoTuneConfig(every_n_solves=10_000)
        with QueryService(
            scenario.database, executor=ExecutorConfig(workers=1), autotune=config
        ) as service:
            tuner = service.autotuner
            before = service.controller.spawn_overhead_seconds
            tuner.observe_batch(
                list(scenario.queries[:8]), "parallel", wall_seconds=2.0, new_samples=[]
            )
            after = service.controller.spawn_overhead_seconds
            assert after != before
            assert after == tuner.spawn_tracker.estimate
            assert service.stats()["autotune"]["spawn_overhead"]["observations"] == 1


class TestCalibrationPersistence:
    def make_state(self):
        planner = replace(DEFAULT_PLANNER_CONFIG, mode="cost", path_cost_weight=0.123)
        return CalibrationState(
            planner=planner,
            spawn_cost_threshold=0.004,
            sample_count=12,
            source="fitted",
            per_route={"para-L": {"samples": 3.0}},
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "state.json")
        state = self.make_state()
        state.save(path)
        assert CalibrationState.load_or_none(path) == state

    def test_missing_file_maps_to_none(self, tmp_path):
        assert CalibrationState.load_or_none(str(tmp_path / "absent.json")) is None

    def test_mutated_files_never_raise(self, tmp_path):
        """Property: any truncation, byte corruption or wrong-shaped JSON
        yields None (or a well-formed state), never an exception."""
        path = tmp_path / "state.json"
        good = path.with_name("good.json")
        state = self.make_state()
        state.save(str(good))
        text = good.read_text()
        rng = random.Random(20130625)
        printable = "abcdefghijklmnop{}[]\",:0123456789"
        wrong_shapes = [
            "", "null", "[]", '"a string"', "{}", "[1, 2, 3]",
            '{"planner": 5}', '{"planner": null}',
            '{"planner": {"mode": "bogus"}}',
            '{"planner": {"no_such_field": 1}}',
            json.dumps({**json.loads(text), "sample_count": "twelve"}),
        ]
        trials = []
        for _ in range(25):  # truncations
            trials.append(text[: rng.randrange(len(text))])
        for _ in range(25):  # byte flips
            index = rng.randrange(len(text))
            mutated = text[:index] + rng.choice(printable) + text[index + 1 :]
            trials.append(mutated)
        trials.extend(wrong_shapes)
        outcomes = {"none": 0, "state": 0}
        for trial in trials:
            path.write_text(trial)
            loaded = CalibrationState.load_or_none(str(path))
            if loaded is None:
                outcomes["none"] += 1
            else:
                assert isinstance(loaded, CalibrationState)
                assert isinstance(loaded.planner.mode, str)
                outcomes["state"] += 1
        assert outcomes["none"] > 0, "no mutation was actually corrupting"

    def test_service_starts_clean_on_corrupt_file(self, scenario, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text('{"planner": {"mode": "cost", truncated')
        with QueryService(
            scenario.database,
            executor=ExecutorConfig(workers=1),
            calibration=str(path),
        ) as service:
            assert service.planner.mode == "threshold"
            results = service.evaluate(scenario.queries[:4])
            assert len(results) == 4

    def test_service_starts_clean_on_missing_file(self, scenario, tmp_path):
        with QueryService(
            scenario.database,
            executor=ExecutorConfig(workers=1),
            calibration=str(tmp_path / "never-written.json"),
        ) as service:
            assert service.planner.mode == "threshold"
            assert service.stats()["calibration"] is None
