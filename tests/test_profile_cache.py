"""Unit tests for the bounded classification-profile LRU in
:mod:`repro.cq.evaluation` (`_PROFILE_CACHE`)."""

import pytest

from repro.cq import evaluate_query_set_sequential, parse_query
from repro.cq import evaluation as evaluation_module
from repro.cq.evaluation import (
    _PROFILE_CACHE,
    _cached_profile,
    clear_profile_cache,
)
from repro.workloads import dense_graph_database, path_query


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts and ends with an empty profile cache."""
    clear_profile_cache()
    yield
    clear_profile_cache()


def pattern_of_length(length):
    """Distinct canonical structures: directed path queries of distinct lengths."""
    return path_query(length).canonical_structure()


class TestCachedProfile:
    def test_populates_on_miss_and_reuses_on_hit(self):
        pattern = pattern_of_length(2)
        first = _cached_profile(pattern)
        assert len(_PROFILE_CACHE) == 1
        assert _cached_profile(pattern) is first
        assert len(_PROFILE_CACHE) == 1

    def test_eviction_at_limit_drops_oldest(self, monkeypatch):
        monkeypatch.setattr(_PROFILE_CACHE, "_capacity", 3)
        patterns = [pattern_of_length(length) for length in range(1, 5)]
        for pattern in patterns[:3]:
            _cached_profile(pattern)
        assert len(_PROFILE_CACHE) == 3
        _cached_profile(patterns[3])  # forces an eviction
        assert len(_PROFILE_CACHE) == 3
        assert patterns[0] not in _PROFILE_CACHE  # FIFO end of the LRU
        assert patterns[3] in _PROFILE_CACHE

    def test_move_to_end_protects_recently_used_entries(self, monkeypatch):
        monkeypatch.setattr(_PROFILE_CACHE, "_capacity", 3)
        patterns = [pattern_of_length(length) for length in range(1, 5)]
        for pattern in patterns[:3]:
            _cached_profile(pattern)
        _cached_profile(patterns[0])  # hit: moves patterns[0] to the MRU end
        _cached_profile(patterns[3])  # evicts patterns[1], not patterns[0]
        assert patterns[0] in _PROFILE_CACHE
        assert patterns[1] not in _PROFILE_CACHE
        assert list(_PROFILE_CACHE) == [patterns[2], patterns[0], patterns[3]]

    def test_clear_profile_cache_empties_everything(self):
        for length in range(1, 4):
            _cached_profile(pattern_of_length(length))
        assert len(_PROFILE_CACHE) == 3
        clear_profile_cache()
        assert len(_PROFILE_CACHE) == 0


class TestEvaluateQuerySetCacheFlag:
    def test_use_cache_true_populates_the_shared_cache(self):
        database = dense_graph_database(8, 0.4, seed=1)
        queries = [parse_query("E(x, y)"), parse_query("E(x, y), E(y, z)")]
        evaluate_query_set_sequential(queries, database, use_cache=True)
        assert len(_PROFILE_CACHE) == 2

    def test_use_cache_false_bypasses_the_shared_cache(self):
        database = dense_graph_database(8, 0.4, seed=1)
        queries = [parse_query("E(x, y)"), parse_query("E(x, y), E(y, z)")]
        evaluate_query_set_sequential(queries, database, use_cache=False)
        assert len(_PROFILE_CACHE) == 0

    def test_use_cache_false_still_deduplicates_within_the_batch(self, monkeypatch):
        calls = []
        real = evaluation_module.classify_structure

        def counting_classify(structure):
            calls.append(structure)
            return real(structure)

        monkeypatch.setattr(evaluation_module, "classify_structure", counting_classify)
        database = dense_graph_database(8, 0.4, seed=1)
        queries = [parse_query("E(x, y)")] * 5
        evaluate_query_set_sequential(queries, database, use_cache=False)
        assert len(calls) == 1  # one classification for five identical queries

    def test_service_sequential_path_respects_use_cache(self):
        from repro.eval import EvalService, ExecutorConfig

        database = dense_graph_database(8, 0.4, seed=1)
        queries = [parse_query("E(a, b), E(b, c)")]
        with EvalService(database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(queries, use_cache=False)
            assert len(_PROFILE_CACHE) == 0
            service.evaluate(queries, use_cache=True)
            assert len(_PROFILE_CACHE) == 1


class TestBoundedLRU:
    def test_capacity_validation(self):
        from repro.caching import BoundedLRU

        with pytest.raises(ValueError):
            BoundedLRU(0)

    def test_get_put_peek_and_counters(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        # peek neither counts nor refreshes recency
        assert cache.peek("a") == 1
        assert cache.info() == {"hits": 1, "misses": 1, "size": 1}

    def test_eviction_respects_recency(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_overwrite_refreshes_without_evicting(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, no eviction
        assert len(cache) == 2 and cache.peek("a") == 10
        cache.put("c", 3)  # evicts "b" (coldest)
        assert "b" not in cache

    def test_clear_resets_counters(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.info() == {"hits": 0, "misses": 0, "size": 0}


class TestGetOrPut:
    def test_computes_once_then_serves_from_cache(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_put("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        assert cache.info() == {"hits": 2, "misses": 1, "size": 1}

    def test_eviction_still_applies(self):
        from repro.caching import BoundedLRU

        cache = BoundedLRU(2)
        for i in range(3):
            cache.get_or_put(i, lambda i=i: i * 10)
        assert 0 not in cache and 2 in cache
