"""Unit tests for the semiring join engine and its hash-index layer."""

from __future__ import annotations

import sys

import pytest

from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.width import (
    good_path_decomposition,
    good_tree_decomposition,
)
from repro.exceptions import DecompositionError
from repro.homomorphism.backtracking import (
    count_homomorphisms,
    has_homomorphism,
    is_partial_homomorphism,
)
from repro.homomorphism.decomposition_solver import (
    _bag_homomorphisms,
    count_homomorphisms_pd,
    count_homomorphisms_td,
    homomorphism_exists_td,
    legacy_count_homomorphisms_td,
)
from repro.homomorphism.join_engine import (
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    Semiring,
    count_homomorphisms_join,
    homomorphism_exists_join,
    iter_bag_assignments,
    pruned_domains,
    run_decomposition_dp,
    run_path_sweep,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    RelationIndex,
    Structure,
    Vocabulary,
    clique,
    cycle,
    disjoint_union,
    path,
    random_graph_structure,
    stable_key,
    stable_sorted,
    structure_index,
)
from repro.structures.indexes import StructureIndex


# ---------------------------------------------------------------------------
# The index layer
# ---------------------------------------------------------------------------

class TestRelationIndex:
    def setup_method(self):
        self.index = RelationIndex(
            "E", 2, [(1, 2), (1, 3), (2, 3), (3, 1)]
        )

    def test_matching_on_one_bound_position(self):
        assert sorted(self.index.matching({0: 1})) == [(1, 2), (1, 3)]
        assert sorted(self.index.matching({1: 3})) == [(1, 3), (2, 3)]
        assert self.index.matching({0: 4}) == ()

    def test_matching_fully_bound(self):
        assert list(self.index.matching({0: 1, 1: 2})) == [(1, 2)]
        assert self.index.matching({0: 2, 1: 1}) == ()

    def test_matching_unbound_returns_all(self):
        assert set(self.index.matching({})) == {(1, 2), (1, 3), (2, 3), (3, 1)}

    def test_column_and_values(self):
        assert self.index.column(0) == frozenset({1, 2, 3})
        assert self.index.column(1) == frozenset({1, 2, 3})
        assert self.index.values(1, {0: 1}) == frozenset({2, 3})

    def test_membership_and_len(self):
        assert (1, 2) in self.index
        assert (2, 1) not in self.index
        assert len(self.index) == 4

    def test_out_of_range_positions_raise(self):
        with pytest.raises(IndexError):
            self.index.column(2)
        with pytest.raises(IndexError):
            self.index.matching({5: 1})


class TestStructureIndex:
    def test_wraps_every_relation(self):
        vocabulary = Vocabulary({"E": 2, "C": 1})
        structure = Structure(
            vocabulary, [1, 2, 3], {"E": [(1, 2), (2, 3)], "C": [(1,)]}
        )
        index = StructureIndex(structure)
        assert index.structure is structure
        assert index.relation("E").arity == 2
        assert index.relation("C").values(0, {}) == frozenset({1})

    def test_factory_caches_per_structure(self):
        structure = cycle(4)
        assert structure_index(structure) is structure_index(structure)

    def test_empty_relation_indexes_cleanly(self):
        structure = Structure(GRAPH_VOCABULARY, [1, 2], {"E": []})
        index = StructureIndex(structure)
        assert index.relation("E").matching({0: 1}) == ()
        assert index.relation("E").column(0) == frozenset()


# ---------------------------------------------------------------------------
# Stable sort keys (regression for the repr-only canonical sort)
# ---------------------------------------------------------------------------

class _RedToken:
    """A hashable element whose repr collides with :class:`_BlueToken`."""

    def __repr__(self):
        return "token"


class _BlueToken:
    def __repr__(self):
        return "token"


class TestStableKey:
    def test_orders_colliding_reprs_by_type(self):
        red, blue = _RedToken(), _BlueToken()
        assert repr(red) == repr(blue)
        # repr-only sorting leaves the relative order to the input order;
        # stable_key breaks the tie by type name, the same way round every time.
        assert stable_sorted([red, blue]) == stable_sorted([blue, red])

    def test_orders_mixed_types_deterministically(self):
        mixed = [2, "1", 1, "2"]
        assert stable_sorted(mixed) == stable_sorted(list(reversed(mixed)))

    def test_engine_counts_with_colliding_reprs(self):
        red, blue = _RedToken(), _BlueToken()
        pattern = Structure(GRAPH_VOCABULARY, [red, blue], {"E": [(red, blue)]})
        target = cycle(3)
        expected = count_homomorphisms(pattern, target)
        assert expected > 0
        decomposition = good_tree_decomposition(pattern)
        assert count_homomorphisms_td(pattern, target, decomposition) == expected
        assert legacy_count_homomorphisms_td(pattern, target, decomposition) == expected

    def test_legacy_bag_enumeration_with_mixed_universe(self):
        pattern = Structure(
            GRAPH_VOCABULARY, [1, "a"], {"E": [(1, "a")]}
        )
        target = Structure(
            GRAPH_VOCABULARY, [2, "b"], {"E": [(2, "b"), ("b", 2)]}
        )
        bag = frozenset(pattern.universe)
        mappings = _bag_homomorphisms(pattern, target, bag)
        assert all(
            is_partial_homomorphism(mapping, pattern, target) for mapping in mappings
        )
        assert len(mappings) == count_homomorphisms(pattern, target)


# ---------------------------------------------------------------------------
# Semiring laws
# ---------------------------------------------------------------------------

SEMIRING_SAMPLES = {
    "boolean": (BOOLEAN, [False, True]),
    "counting": (COUNTING, [0, 1, 2, 3, 7]),
    "min-plus": (MIN_PLUS, [float("inf"), 0, 1, 2.5, 10]),
}


@pytest.mark.parametrize("name", sorted(SEMIRING_SAMPLES))
class TestSemiringLaws:
    def test_additive_monoid(self, name):
        semiring, values = SEMIRING_SAMPLES[name]
        for a in values:
            assert semiring.add(a, semiring.zero) == a
            for b in values:
                assert semiring.add(a, b) == semiring.add(b, a)
                for c in values:
                    assert semiring.add(semiring.add(a, b), c) == semiring.add(
                        a, semiring.add(b, c)
                    )

    def test_multiplicative_monoid(self, name):
        semiring, values = SEMIRING_SAMPLES[name]
        for a in values:
            assert semiring.mul(a, semiring.one) == a
            assert semiring.mul(semiring.one, a) == a
            for b in values:
                for c in values:
                    assert semiring.mul(semiring.mul(a, b), c) == semiring.mul(
                        a, semiring.mul(b, c)
                    )

    def test_distributivity_and_annihilation(self, name):
        semiring, values = SEMIRING_SAMPLES[name]
        for a in values:
            assert semiring.mul(a, semiring.zero) == semiring.zero
            assert semiring.mul(semiring.zero, a) == semiring.zero
            for b in values:
                for c in values:
                    assert semiring.mul(a, semiring.add(b, c)) == semiring.add(
                        semiring.mul(a, b), semiring.mul(a, c)
                    )

    def test_sum_and_product_helpers(self, name):
        semiring, values = SEMIRING_SAMPLES[name]
        assert semiring.sum([]) == semiring.zero
        assert semiring.product([]) == semiring.one
        assert semiring.sum(values[:2]) == semiring.add(values[0], values[1])


def test_custom_semiring_is_usable():
    max_plus = Semiring("max-plus", float("-inf"), 0, max, lambda a, b: a + b)
    pattern, target = path(3), cycle(4)
    decomposition = good_tree_decomposition(pattern)
    value = run_decomposition_dp(pattern, target, decomposition, max_plus)
    assert value == 0  # a homomorphism exists, all costs are zero


# ---------------------------------------------------------------------------
# Bag assignment enumeration
# ---------------------------------------------------------------------------

class TestBagAssignments:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_legacy_product_enumeration(self, seed):
        pattern = random_graph_structure(4, 0.6, seed)
        target = random_graph_structure(5, 0.5, seed + 50)
        for bag in [
            frozenset(list(pattern.universe)[:2]),
            frozenset(pattern.universe),
            frozenset(),
        ]:
            fast = {
                tuple(sorted(m.items(), key=lambda kv: stable_key(kv[0])))
                for m in iter_bag_assignments(pattern, target, bag)
            }
            slow = {
                tuple(sorted(m.items(), key=lambda kv: stable_key(kv[0])))
                for m in _bag_homomorphisms(pattern, target, bag)
            }
            assert fast == slow

    def test_empty_bag_yields_empty_assignment(self):
        assert list(iter_bag_assignments(path(2), cycle(3), frozenset())) == [{}]

    def test_sparse_target_keeps_all_partial_homomorphisms(self):
        # Regression: global positional pruning must not leak into the
        # public enumerator.  {a: 2} is a valid partial homomorphism on
        # the bag {a} even though 2 has no outgoing E-edge in the target.
        pattern = Structure(GRAPH_VOCABULARY, ["a", "b"], {"E": [("a", "b")]})
        target = Structure(GRAPH_VOCABULARY, [1, 2], {"E": [(1, 2)]})
        bag = frozenset({"a"})
        fast = sorted(m["a"] for m in iter_bag_assignments(pattern, target, bag))
        slow = sorted(m["a"] for m in _bag_homomorphisms(pattern, target, bag))
        assert fast == slow == [1, 2]

    def test_pruned_domains_respect_unary_relations(self):
        vocabulary = Vocabulary({"E": 2, "C": 1})
        pattern = Structure(
            vocabulary, ["x", "y"], {"E": [("x", "y")], "C": [("x",)]}
        )
        target = Structure(
            vocabulary, [1, 2, 3], {"E": [(1, 2), (2, 3)], "C": [(1,)]}
        )
        domains = pruned_domains(pattern, structure_index(target))
        assert domains["x"] == frozenset({1})
        assert domains["y"] <= frozenset({2, 3})  # column 1 of E in the target


# ---------------------------------------------------------------------------
# Engine end-to-end edge cases
# ---------------------------------------------------------------------------

class TestJoinEngineEdgeCases:
    def test_empty_target_relation_means_no_homomorphism(self):
        pattern = path(3)
        target = Structure(GRAPH_VOCABULARY, [1, 2, 3], {"E": []})
        assert homomorphism_exists_join(pattern, target) is False
        assert count_homomorphisms_join(pattern, target) == 0

    def test_pattern_without_edges_counts_all_maps(self):
        pattern = Structure(GRAPH_VOCABULARY, ["a", "b"], {"E": []})
        target = random_graph_structure(4, 0.5, 3)
        assert count_homomorphisms_join(pattern, target) == 4 ** 2
        assert homomorphism_exists_join(pattern, target) is True

    def test_disconnected_pattern_multiplies_components(self):
        component = path(2)
        pattern = disjoint_union([component, component])
        target = random_graph_structure(5, 0.5, 11)
        expected = count_homomorphisms(component, target) ** 2
        assert count_homomorphisms_join(pattern, target) == expected
        assert count_homomorphisms(pattern, target) == expected

    def test_mismatched_decomposition_raises(self):
        with pytest.raises(DecompositionError):
            homomorphism_exists_td(
                cycle(5), cycle(3), good_tree_decomposition(cycle(4))
            )

    def test_nullary_atom_obstruction(self):
        vocabulary = Vocabulary({"E": 2, "F": 0})
        pattern = Structure(
            vocabulary, ["x", "y"], {"E": [("x", "y")], "F": [()]}
        )
        satisfied = Structure(vocabulary, [1, 2], {"E": [(1, 2)], "F": [()]})
        violated = Structure(vocabulary, [1, 2], {"E": [(1, 2)], "F": []})
        decomposition = good_tree_decomposition(pattern)
        assert run_decomposition_dp(pattern, satisfied, decomposition, COUNTING) > 0
        assert run_decomposition_dp(pattern, violated, decomposition, COUNTING) == 0

    def test_repeated_variable_atoms_require_loops(self):
        looped = Structure(GRAPH_VOCABULARY, ["v"], {"E": [("v", "v")]})
        loopless_target = cycle(3)
        loopy_target = Structure(GRAPH_VOCABULARY, [1, 2], {"E": [(1, 1), (1, 2)]})
        assert count_homomorphisms_join(looped, loopless_target) == 0
        assert count_homomorphisms_join(looped, loopy_target) == 1


class TestDeepDecompositions:
    def test_path_of_500_bags_without_recursion_error(self):
        n = 501
        pattern = path(n)  # universe 1..n
        bags = [frozenset((i, i + 1)) for i in range(1, n)]
        decomposition = PathDecomposition(bags)
        assert len(decomposition) == 500
        target = cycle(4)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(450)  # well below the bag count
        try:
            count_sweep = run_path_sweep(pattern, target, decomposition, COUNTING)
            exists_sweep = run_path_sweep(pattern, target, decomposition, BOOLEAN)
            count_tree = run_decomposition_dp(
                pattern, target, decomposition.as_tree_decomposition(), COUNTING
            )
        finally:
            sys.setrecursionlimit(limit)
        assert exists_sweep is True
        assert count_sweep == count_tree
        # walks of length n-1 on C4: 4 choices for the start, 2 per step
        assert count_sweep == 4 * 2 ** (n - 1)

    def test_rolling_sweep_agrees_with_tree_dp_on_long_paths(self):
        pattern = path(40)
        decomposition = good_path_decomposition(pattern)
        target = random_graph_structure(6, 0.5, 23)
        assert count_homomorphisms_pd(pattern, target, decomposition) == (
            count_homomorphisms_td(
                pattern, target, decomposition.as_tree_decomposition()
            )
        )


class TestEngineAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_counts_and_existence_match(self, seed):
        pattern = random_graph_structure(4, 0.5, seed)
        target = random_graph_structure(5, 0.4, seed + 100)
        expected_count = count_homomorphisms(pattern, target)
        expected_exists = has_homomorphism(pattern, target)
        assert count_homomorphisms_join(pattern, target) == expected_count
        assert homomorphism_exists_join(pattern, target) == expected_exists
        pd = good_path_decomposition(pattern)
        assert run_path_sweep(pattern, target, pd, COUNTING) == expected_count
        assert bool(run_path_sweep(pattern, target, pd, BOOLEAN)) == expected_exists

    def test_clique_pattern(self):
        pattern = clique(3)
        target = random_graph_structure(7, 0.5, 5)
        assert count_homomorphisms_join(pattern, target) == count_homomorphisms(
            pattern, target
        )
