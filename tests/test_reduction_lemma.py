"""Tests for the Reduction Lemma chain: Lemmas 3.7, 3.8, 3.9 and their composition."""

import pytest

from repro.exceptions import ReductionError
from repro.homomorphism import has_embedding, has_homomorphism
from repro.minors import find_minor_map
from repro.reductions import (
    CoreStarReduction,
    GaifmanReduction,
    HomInstance,
    MinorReduction,
    ReductionLemmaChain,
    reduce_core_star_instance,
    reduce_core_star_to_embedding,
    reduce_gaifman_instance,
    reduce_minor_instance,
)
from repro.structures import (
    Structure,
    Vocabulary,
    cycle,
    cycle_graph,
    gaifman_graph,
    graph_structure,
    grid_graph,
    path,
    path_graph,
    star_expansion,
)
from tests.conftest import colored_target_for


class TestMinorReductionLemma37:
    @pytest.mark.parametrize("seed", range(4))
    def test_path_minor_of_cycle(self, seed):
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 5, 0.5, seed)
        instance = HomInstance(pattern_star, target)
        reduced = MinorReduction(cycle_graph(5)).apply(instance)
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_cycle_minor_of_grid(self, seed):
        pattern_star = star_expansion(cycle(3))
        target = colored_target_for(pattern_star, 4, 0.6, seed)
        instance = HomInstance(pattern_star, target)
        host = grid_graph(2, 2)
        minor_map = find_minor_map(cycle_graph(3), host)
        assert minor_map is not None
        reduced = reduce_minor_instance(instance, host, minor_map)
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    def test_non_minor_rejected(self):
        pattern_star = star_expansion(cycle(3))
        instance = HomInstance(pattern_star, colored_target_for(pattern_star, 4, 0.5, 0))
        with pytest.raises(ReductionError):
            MinorReduction(path_graph(5)).apply(instance)

    def test_output_pattern_is_starred_host(self):
        pattern_star = star_expansion(path(2))
        instance = HomInstance(pattern_star, colored_target_for(pattern_star, 4, 0.5, 1))
        reduced = MinorReduction(cycle_graph(4)).apply(instance)
        assert len(reduced.pattern) == 4


class TestGaifmanReductionLemma38:
    @pytest.mark.parametrize("seed", range(4))
    def test_ternary_structure(self, seed):
        vocabulary = Vocabulary({"R": 3})
        structure = Structure(vocabulary, [1, 2, 3, 4], {"R": [(1, 2, 3), (2, 3, 4)]})
        pattern_star = star_expansion(graph_structure(gaifman_graph(structure)))
        target = colored_target_for(pattern_star, 4, 0.6, seed)
        instance = HomInstance(pattern_star, target)
        reduced = GaifmanReduction(structure).apply(instance)
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    def test_mismatched_pattern_rejected(self):
        structure = cycle(4)
        pattern_star = star_expansion(path(3))
        instance = HomInstance(pattern_star, colored_target_for(pattern_star, 4, 0.5, 0))
        with pytest.raises(ReductionError):
            reduce_gaifman_instance(instance, structure)


class TestCoreStarReductionLemma39:
    @pytest.mark.parametrize("seed", range(4))
    def test_odd_cycle(self, seed):
        pattern_star = star_expansion(cycle(5))
        target = colored_target_for(pattern_star, 6, 0.5, seed)
        instance = HomInstance(pattern_star, target)
        reduced = CoreStarReduction().apply(instance)
        assert reduced.pattern == cycle(5)
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            reduced.pattern, reduced.target
        )

    def test_non_core_rejected(self):
        pattern_star = star_expansion(cycle(4))  # C4 is not a core
        instance = HomInstance(pattern_star, colored_target_for(pattern_star, 5, 0.5, 0))
        with pytest.raises(ReductionError):
            CoreStarReduction().apply(instance)
        # ... but the check can be disabled for experimentation.
        CoreStarReduction(check_core=False).apply(instance)

    @pytest.mark.parametrize("seed", range(3))
    def test_corollary_310_embedding_variant(self, seed):
        """Corollary 3.10: the same target also decides the embedding problem."""
        pattern_star = star_expansion(cycle(3))
        target = colored_target_for(pattern_star, 5, 0.6, seed)
        instance = HomInstance(pattern_star, target)
        embedded = reduce_core_star_to_embedding(instance)
        assert has_homomorphism(instance.pattern, instance.target) == has_embedding(
            embedded.pattern, embedded.target
        )

    def test_empty_colour_classes_give_no(self):
        pattern_star = star_expansion(cycle(3))
        # Target with all colour classes empty but some edges.
        target = Structure(
            pattern_star.vocabulary,
            ["a", "b"],
            {"E": [("a", "b"), ("b", "a")]},
        )
        instance = HomInstance(pattern_star, target)
        reduced = reduce_core_star_instance(instance)
        assert not has_homomorphism(reduced.pattern, reduced.target)


class TestReductionLemmaChain:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_chain_path_into_cycle_family(self, seed):
        chain = ReductionLemmaChain(cycle(5), path_graph(3))
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 4, 0.5, seed)
        instance = HomInstance(pattern_star, target)
        out = chain.apply(instance)
        assert out.pattern == cycle(5)
        assert has_homomorphism(instance.pattern, instance.target) == has_homomorphism(
            out.pattern, out.target
        )

    def test_intermediate_instances_all_equivalent(self):
        chain = ReductionLemmaChain(cycle(5), path_graph(3))
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 4, 0.5, 7)
        instance = HomInstance(pattern_star, target)
        answer = has_homomorphism(instance.pattern, instance.target)
        for name, step in chain.intermediate_instances(instance).items():
            assert has_homomorphism(step.pattern, step.target) == answer, name

    def test_chain_uses_core_of_class_member(self):
        # The core of C6 is a single edge, so only edge-minors can be lifted.
        chain = ReductionLemmaChain(cycle(6), path_graph(2))
        assert len(chain.core) == 2
        with pytest.raises(ReductionError):
            ReductionLemmaChain(cycle(6), path_graph(3))

    def test_parameter_bound(self):
        chain = ReductionLemmaChain(cycle(5), path_graph(3))
        pattern_star = star_expansion(path(3))
        target = colored_target_for(pattern_star, 4, 0.5, 3)
        out = chain.apply(HomInstance(pattern_star, target))
        assert out.parameter() <= chain.parameter_bound(pattern_star.size())
