"""Fault-injection tests: the service under killed, wedged and flaky workers.

Every recovery path is differentially verified: whatever faults fire,
the served ``(query, answer, solver)`` triples must be byte-identical
to the sequential reference evaluation — recovery may cost time, never
correctness.  The injections themselves are deterministic one-shots
(see :mod:`faultinject`), so these tests neither flake nor depend on
scheduling luck for the fault to fire.
"""

import json
import multiprocessing

import pytest

import faultinject
from repro.cq import evaluate_query_set_sequential
from repro.eval import ExecutorConfig
from repro.service import QueryService, ServiceMonitor
from repro.service.monitor import beat
from repro.workloads import scenario_by_name

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="deterministic fault injection requires the fork start method",
)


def triples(results):
    return [(str(query), result.answer, result.solver) for query, result in results]


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=32, seed=17)


@pytest.fixture(scope="module")
def reference(scenario):
    return evaluate_query_set_sequential(scenario.queries, scenario.database)


def parallel_config(**overrides):
    defaults = dict(workers=2, chunk_size=4, min_parallel_batch=1)
    defaults.update(overrides)
    return ExecutorConfig(**defaults)


class TestKilledWorker:
    def test_recovers_with_identical_answers(self, scenario, reference):
        with faultinject.chunk_fault(faultinject.kill_worker) as flags:
            with QueryService(scenario.database, executor=parallel_config()) as service:
                results = service.evaluate(scenario.queries, mode="parallel")
                stats = service.stats()
            assert "armed" not in flags, "the kill never fired"
        assert triples(results) == triples(reference)
        monitor = stats["monitor"]
        assert monitor["recycles"] == 1
        assert monitor["recycle_events"][0]["reason"] == "broken-pool"
        assert monitor["redispatched_chunks"] >= 1
        # The mirrored metric agrees with the event record.
        assert stats["metrics"]["repro_recycles_total"]["samples"] == {
            '{reason="broken-pool"}': 1.0
        }

    def test_store_dedup_survives_the_recycle(self, scenario, reference):
        """Exactly-once semantics: a re-dispatched chunk must not recompute.

        The first (sequential, fault-free) wave warms the shared
        profile store; the killed-worker wave re-dispatches chunks but
        every pattern is already cached, so the global compute counter
        must not move — re-dispatch re-*serves*, it never re-*solves*
        classifications.
        """
        with faultinject.chunk_fault(faultinject.kill_worker):
            with QueryService(scenario.database, executor=parallel_config()) as service:
                service.evaluate(scenario.queries, mode="sequential")
                computes_before = service.stats()["classification_calls"]
                results = service.evaluate(scenario.queries, mode="parallel")
                stats = service.stats()
        assert triples(results) == triples(reference)
        assert stats["monitor"]["recycles"] == 1
        assert stats["classification_calls"] == computes_before

    def test_recycle_limit_bounds_repeated_breakage(self, scenario):
        """A pool that breaks more often than ``max_recycles`` must raise,
        not loop forever."""
        config = parallel_config(max_recycles=0)
        with faultinject.chunk_fault(faultinject.kill_worker):
            with QueryService(scenario.database, executor=config) as service:
                with pytest.raises(Exception):
                    service.evaluate(scenario.queries, mode="parallel")


class TestWedgedWorker:
    def test_deadline_detects_and_recovers(self, scenario, reference):
        config = parallel_config(chunk_deadline_seconds=1.5)
        with faultinject.chunk_fault(faultinject.wedge_worker) as flags:
            with QueryService(scenario.database, executor=config) as service:
                results = service.evaluate(scenario.queries, mode="parallel")
                stats = service.stats()
            assert "armed" not in flags, "the wedge never fired"
        assert triples(results) == triples(reference)
        monitor = stats["monitor"]
        assert monitor["deadline_expiries"] >= 1
        assert monitor["recycles"] == 1
        assert monitor["recycle_events"][0]["reason"] == "chunk-deadline"
        assert monitor["deadline_seconds"] == 1.5

    def test_wedge_past_recycle_limit_raises(self, scenario):
        config = parallel_config(chunk_deadline_seconds=0.5, max_recycles=0)
        with faultinject.chunk_fault(faultinject.wedge_worker):
            with QueryService(scenario.database, executor=config) as service:
                with pytest.raises(RuntimeError, match="deadline"):
                    service.evaluate(scenario.queries, mode="parallel")


class TestManagerStoreTimeout:
    def test_control_plane_hiccup_is_survived(self, scenario, reference):
        """One injected ConnectionError on the control plane (planner
        slot or heartbeat board) must be swallowed by the guarded worker
        paths: answers identical, no recycle, no crash."""
        with multiprocessing.Manager() as manager:
            flags = manager.dict()
            flags["armed"] = True
            with QueryService(scenario.database, executor=parallel_config()) as service:
                stores = service.stores
                # Wrap before the first parallel batch — the lazily
                # created pool then pickles the flaky wrappers into its
                # workers via the initializer.
                stores.control = faultinject.FlakyMapping(stores.control, flags)
                stores.heartbeats = faultinject.FlakyMapping(stores.heartbeats, flags)
                results = service.evaluate(scenario.queries, mode="parallel")
                stats = service.stats()
            assert "armed" not in flags, "the injected timeout never fired"
        assert triples(results) == triples(reference)
        assert stats["monitor"]["recycles"] == 0


class TestTelemetryFlood:
    def test_flood_never_breaks_sample_accounting(self, scenario):
        """A telemetry flood beyond the sink bound drops oldest batches;
        the front-end's consumed offset must clamp instead of slicing
        past the end, and later batches must keep serving."""
        with QueryService(scenario.database, executor=ExecutorConfig(workers=1)) as service:
            service.evaluate(scenario.queries[:8])
            recorded = faultinject.flood_telemetry(
                service.stores.telemetry, batches=1200, per_batch=3
            )
            retained = len(service.stores.telemetry)
            assert retained < recorded, "the sink bound did not drop anything"
            results = service.evaluate(scenario.queries[8:16])
            stats = service.stats()
            json.dumps(stats)  # the endpoint stays serialisable mid-flood
        assert len(results) == 8
        assert stats["queries_served"] == 16


class TestServiceMonitor:
    """Unit tests for the grading logic, no processes involved."""

    def test_beat_and_board_snapshot(self):
        board = {}
        beat(board, 11, "chunk-start", now=100.0)
        beat(board, 12, "chunk-done", now=101.0)
        monitor = ServiceMonitor(heartbeats=board, deadline_seconds=5.0)
        snapshot = monitor.board_snapshot()
        assert snapshot[11] == (100.0, "chunk-start")
        assert snapshot[12] == (101.0, "chunk-done")

    def test_mid_chunk_silence_grades_unhealthy(self):
        board = {}
        beat(board, 1, "chunk-start", now=100.0)
        beat(board, 2, "chunk-done", now=100.0)
        monitor = ServiceMonitor(heartbeats=board, deadline_seconds=5.0)
        # Well past the deadline: the worker stuck mid-chunk is graded
        # unhealthy, the idle one (chunk finished, waiting for work) is
        # not — idle workers do not beat.
        health = {w.worker_id: w.healthy for w in monitor.worker_health(now=200.0)}
        assert health == {1: False, 2: True}
        assert [w.worker_id for w in monitor.unhealthy_workers(now=200.0)] == [1]

    def test_within_deadline_is_healthy(self):
        board = {}
        beat(board, 1, "chunk-start", now=100.0)
        monitor = ServiceMonitor(heartbeats=board, deadline_seconds=5.0)
        assert monitor.unhealthy_workers(now=103.0) == []

    def test_no_deadline_disables_grading(self):
        board = {}
        beat(board, 1, "chunk-start", now=0.0)
        monitor = ServiceMonitor(heartbeats=board, deadline_seconds=None)
        assert monitor.unhealthy_workers(now=1e9) == []

    def test_forget_worker_drops_board_entry(self):
        board = {}
        beat(board, 1, "chunk-start", now=100.0)
        monitor = ServiceMonitor(heartbeats=board, deadline_seconds=1.0)
        monitor.forget_worker(1)
        monitor.forget_worker(999)  # absent: a no-op, not an error
        assert monitor.board_snapshot() == {}

    def test_recycle_events_accumulate(self):
        monitor = ServiceMonitor()
        monitor.observe_recycle("broken-pool", redispatched=3)
        monitor.observe_recycle("chunk-deadline", redispatched=2)
        monitor.observe_deadline_expiry()
        assert monitor.recycles == 2
        assert monitor.redispatched_chunks == 5
        assert monitor.deadline_expiries == 1
        info = monitor.info()
        assert [e["reason"] for e in info["recycle_events"]] == [
            "broken-pool",
            "chunk-deadline",
        ]

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            ServiceMonitor(deadline_seconds=0.0)
