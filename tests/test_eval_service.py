"""Tests for the EVAL(Φ) execution service (:mod:`repro.eval.executor`)."""

import itertools

import pytest

from repro.classification import PlannerConfig
from repro.cq import (
    evaluate_query_set,
    evaluate_query_set_sequential,
    evaluate_query_set_stream,
    parse_query,
)
from repro.eval import EvalService, ExecutorConfig
from repro.eval.executor import _chunks
from repro.workloads import scenario_by_name


def triples(results):
    """The byte-comparable projection: (query text, answer, solver)."""
    return [(str(query), result.answer, result.solver) for query, result in results]


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=40, seed=17)


class TestExecutorConfig:
    def test_defaults_resolve_to_at_least_one_worker(self):
        assert ExecutorConfig().effective_workers() >= 1

    def test_zero_workers_resolve_to_one(self):
        assert ExecutorConfig(workers=0).effective_workers() == 1

    @pytest.mark.parametrize(
        "kwargs", [{"workers": -1}, {"chunk_size": 0}, {"inflight_factor": 0}]
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)

    def test_chunks_cover_input_in_order(self):
        chunks = list(_chunks(range(10), 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert list(itertools.chain.from_iterable(chunks)) == list(range(10))


class TestParallelEquivalence:
    def test_parallel_results_byte_identical_to_sequential(self, scenario):
        sequential = evaluate_query_set_sequential(scenario.queries, scenario.database)
        config = ExecutorConfig(workers=2, chunk_size=5, min_parallel_batch=1, adaptive=False)
        with EvalService(scenario.database, executor=config) as service:
            parallel = service.evaluate(scenario.queries)
            # Pool reuse: a second batch over the same service still matches.
            again = service.evaluate(scenario.queries[:10])
        assert triples(parallel) == triples(sequential)
        assert triples(again) == triples(sequential[:10])

    def test_evaluate_query_set_routes_through_the_service(self, scenario):
        sequential = evaluate_query_set(scenario.queries, scenario.database)
        parallel = evaluate_query_set(scenario.queries, scenario.database, workers=2)
        assert triples(parallel) == triples(sequential)

    def test_small_batches_stay_in_process(self, scenario):
        # Below min_parallel_batch the service must not pay for a pool.
        config = ExecutorConfig(workers=2, min_parallel_batch=1000)
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries[:5])
            assert service._pool is None  # no pool was created
        assert triples(results) == triples(
            evaluate_query_set_sequential(scenario.queries[:5], scenario.database)
        )

    def test_workers_and_conflicting_executor_config_rejected(self, scenario):
        with pytest.raises(ValueError):
            evaluate_query_set(
                scenario.queries,
                scenario.database,
                workers=3,
                executor=ExecutorConfig(workers=2),
            )


class TestStreaming:
    def test_stream_preserves_input_order(self, scenario):
        config = ExecutorConfig(workers=2, chunk_size=4, min_parallel_batch=1, adaptive=False)
        streamed = list(
            evaluate_query_set_stream(
                iter(scenario.queries), scenario.database, executor=config
            )
        )
        assert triples(streamed) == triples(
            evaluate_query_set_sequential(scenario.queries, scenario.database)
        )

    def test_stream_is_lazy_on_the_sequential_path(self, scenario):
        consumed = []

        def tracking():
            for query in scenario.queries:
                consumed.append(query)
                yield query

        stream = evaluate_query_set_stream(tracking(), scenario.database)
        first = next(stream)
        assert first[0] is scenario.queries[0]
        # Only a prefix of the input has been pulled, not the whole batch.
        assert len(consumed) < len(scenario.queries)
        stream.close()

    def test_stream_window_bounds_inflight_chunks(self, scenario):
        # With a tiny window the stream still terminates and stays ordered.
        config = ExecutorConfig(
            workers=2, chunk_size=2, min_parallel_batch=1, inflight_factor=1, adaptive=False
        )
        with EvalService(scenario.database, executor=config) as service:
            streamed = list(service.evaluate_stream(scenario.queries[:12]))
        assert triples(streamed) == triples(
            evaluate_query_set_sequential(scenario.queries[:12], scenario.database)
        )


class TestCostModePlanning:
    def test_cost_mode_answers_match_reference(self, scenario):
        reference = evaluate_query_set_sequential(scenario.queries, scenario.database)
        cost_planned = evaluate_query_set(
            scenario.queries, scenario.database, planner=PlannerConfig(mode="cost")
        )
        # Routes may differ (that is the point); answers may not.
        assert [r.answer for _, r in cost_planned] == [r.answer for _, r in reference]
        assert [str(q) for q, _ in cost_planned] == [str(q) for q, _ in reference]

    def test_service_plan_exposes_estimates(self, scenario):
        service = EvalService(scenario.database, planner=PlannerConfig(mode="cost"))
        plan = service.plan(scenario.queries[0])
        assert plan.mode == "cost"
        assert plan.estimates and plan.cost == min(plan.estimates.values())

    def test_statistics_reflect_query_vocabulary(self):
        scenario = scenario_by_name("grid_walks", count=3, seed=1)
        service = EvalService(scenario.database)
        stats = service.statistics(parse_query("E(x, y)"))
        assert stats.universe_size == 36
        assert stats.relation_sizes["E"] == 120


class TestAdaptiveCutover:
    def test_single_cpu_cuts_over_to_sequential(self, scenario, monkeypatch):
        import repro.eval.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        config = ExecutorConfig(workers=2, min_parallel_batch=1)
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries)
            assert service.last_mode == "sequential"
            assert "single CPU" in service.last_mode_reason
        assert triples(results) == triples(
            evaluate_query_set_sequential(scenario.queries, scenario.database)
        )

    def test_cheap_chunks_cut_over_on_cost(self, scenario, monkeypatch):
        import repro.eval.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        config = ExecutorConfig(
            workers=2, min_parallel_batch=1, spawn_cost_threshold=float("inf")
        )
        with EvalService(scenario.database, executor=config) as service:
            service.evaluate(scenario.queries[:6])
            assert service.last_mode == "sequential"
            assert "below spawn threshold" in service.last_mode_reason

    def test_expensive_chunks_stay_parallel(self, scenario, monkeypatch):
        import repro.eval.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        config = ExecutorConfig(workers=2, min_parallel_batch=1, spawn_cost_threshold=0.0)
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries[:8])
            assert service.last_mode == "parallel"
        assert triples(results) == triples(
            evaluate_query_set_sequential(scenario.queries[:8], scenario.database)
        )

    def test_adaptive_disabled_never_cuts_over(self, scenario):
        config = ExecutorConfig(workers=2, min_parallel_batch=1, adaptive=False)
        with EvalService(scenario.database, executor=config) as service:
            service.evaluate(scenario.queries[:4])
            assert service.last_mode == "parallel"
            assert service.last_mode_reason == "adaptive cutover disabled"

    def test_small_batches_record_sequential_mode(self, scenario):
        config = ExecutorConfig(workers=2, min_parallel_batch=1000)
        with EvalService(scenario.database, executor=config) as service:
            service.evaluate(scenario.queries[:4])
            assert service.last_mode == "sequential"
            assert "min_parallel_batch" in service.last_mode_reason

    def test_adaptive_sequential_results_match_reference(self, scenario, monkeypatch):
        import repro.eval.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        config = ExecutorConfig(workers=4, min_parallel_batch=1)
        with EvalService(scenario.database, executor=config) as service:
            streamed = list(service.evaluate_stream(iter(scenario.queries)))
        assert triples(streamed) == triples(
            evaluate_query_set_sequential(scenario.queries, scenario.database)
        )


class TestMemoisedResults:
    def test_duplicate_queries_share_one_solve(self, scenario):
        calls = []
        import repro.eval.executor as executor_module

        original = executor_module.solve_with_degree

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        with EvalService(scenario.database) as service:
            import unittest.mock as mock

            with mock.patch.object(executor_module, "solve_with_degree", counting):
                duplicated = [scenario.queries[0]] * 5 + [scenario.queries[1]] * 5
                results = service.evaluate(duplicated)
        assert len(calls) <= 2
        assert len(results) == 10
        assert triples(results) == triples(
            evaluate_query_set_sequential(duplicated, scenario.database)
        )


class TestSlimResults:
    def test_slim_results_drop_the_profile(self, scenario):
        from repro.eval import SlimSolveResult

        config = ExecutorConfig(workers=1, slim_results=True)
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries[:10])
        reference = evaluate_query_set_sequential(scenario.queries[:10], scenario.database)
        assert all(isinstance(r, SlimSolveResult) for _, r in results)
        assert [(r.answer, r.solver, r.degree) for _, r in results] == [
            (r.answer, r.solver, r.degree) for _, r in reference
        ]
        assert [r.core_certificate for _, r in results] == [
            r.core_certificate for _, r in reference
        ]

    def test_slim_results_pickle_smaller(self, scenario):
        import pickle

        config = ExecutorConfig(workers=1, slim_results=True)
        with EvalService(scenario.database, executor=config) as service:
            slim = [r for _, r in service.evaluate(scenario.queries)]
        full = [
            r for _, r in evaluate_query_set_sequential(scenario.queries, scenario.database)
        ]
        assert len(pickle.dumps(slim)) < len(pickle.dumps(full)) / 2

    def test_slim_results_ship_from_pool_workers(self, scenario):
        from repro.eval import SlimSolveResult

        config = ExecutorConfig(
            workers=2, min_parallel_batch=1, adaptive=False, slim_results=True
        )
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries[:12])
        assert all(isinstance(r, SlimSolveResult) for _, r in results)
