"""Tests for the EVAL(Φ) execution service (:mod:`repro.eval.executor`)."""

import itertools

import pytest

from repro.classification import PlannerConfig
from repro.cq import (
    evaluate_query_set,
    evaluate_query_set_sequential,
    evaluate_query_set_stream,
    parse_query,
)
from repro.eval import EvalService, ExecutorConfig
from repro.eval.executor import _chunks
from repro.workloads import scenario_by_name


def triples(results):
    """The byte-comparable projection: (query text, answer, solver)."""
    return [(str(query), result.answer, result.solver) for query, result in results]


@pytest.fixture(scope="module")
def scenario():
    return scenario_by_name("mixed_vocabulary", count=40, seed=17)


class TestExecutorConfig:
    def test_defaults_resolve_to_at_least_one_worker(self):
        assert ExecutorConfig().effective_workers() >= 1

    def test_zero_workers_resolve_to_one(self):
        assert ExecutorConfig(workers=0).effective_workers() == 1

    @pytest.mark.parametrize(
        "kwargs", [{"workers": -1}, {"chunk_size": 0}, {"inflight_factor": 0}]
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)

    def test_chunks_cover_input_in_order(self):
        chunks = list(_chunks(range(10), 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert list(itertools.chain.from_iterable(chunks)) == list(range(10))


class TestParallelEquivalence:
    def test_parallel_results_byte_identical_to_sequential(self, scenario):
        sequential = evaluate_query_set_sequential(scenario.queries, scenario.database)
        config = ExecutorConfig(workers=2, chunk_size=5, min_parallel_batch=1)
        with EvalService(scenario.database, executor=config) as service:
            parallel = service.evaluate(scenario.queries)
            # Pool reuse: a second batch over the same service still matches.
            again = service.evaluate(scenario.queries[:10])
        assert triples(parallel) == triples(sequential)
        assert triples(again) == triples(sequential[:10])

    def test_evaluate_query_set_routes_through_the_service(self, scenario):
        sequential = evaluate_query_set(scenario.queries, scenario.database)
        parallel = evaluate_query_set(scenario.queries, scenario.database, workers=2)
        assert triples(parallel) == triples(sequential)

    def test_small_batches_stay_in_process(self, scenario):
        # Below min_parallel_batch the service must not pay for a pool.
        config = ExecutorConfig(workers=2, min_parallel_batch=1000)
        with EvalService(scenario.database, executor=config) as service:
            results = service.evaluate(scenario.queries[:5])
            assert service._pool is None  # no pool was created
        assert triples(results) == triples(
            evaluate_query_set_sequential(scenario.queries[:5], scenario.database)
        )

    def test_workers_and_conflicting_executor_config_rejected(self, scenario):
        with pytest.raises(ValueError):
            evaluate_query_set(
                scenario.queries,
                scenario.database,
                workers=3,
                executor=ExecutorConfig(workers=2),
            )


class TestStreaming:
    def test_stream_preserves_input_order(self, scenario):
        config = ExecutorConfig(workers=2, chunk_size=4, min_parallel_batch=1)
        streamed = list(
            evaluate_query_set_stream(
                iter(scenario.queries), scenario.database, executor=config
            )
        )
        assert triples(streamed) == triples(
            evaluate_query_set_sequential(scenario.queries, scenario.database)
        )

    def test_stream_is_lazy_on_the_sequential_path(self, scenario):
        consumed = []

        def tracking():
            for query in scenario.queries:
                consumed.append(query)
                yield query

        stream = evaluate_query_set_stream(tracking(), scenario.database)
        first = next(stream)
        assert first[0] is scenario.queries[0]
        # Only a prefix of the input has been pulled, not the whole batch.
        assert len(consumed) < len(scenario.queries)
        stream.close()

    def test_stream_window_bounds_inflight_chunks(self, scenario):
        # With a tiny window the stream still terminates and stays ordered.
        config = ExecutorConfig(
            workers=2, chunk_size=2, min_parallel_batch=1, inflight_factor=1
        )
        with EvalService(scenario.database, executor=config) as service:
            streamed = list(service.evaluate_stream(scenario.queries[:12]))
        assert triples(streamed) == triples(
            evaluate_query_set_sequential(scenario.queries[:12], scenario.database)
        )


class TestCostModePlanning:
    def test_cost_mode_answers_match_reference(self, scenario):
        reference = evaluate_query_set_sequential(scenario.queries, scenario.database)
        cost_planned = evaluate_query_set(
            scenario.queries, scenario.database, planner=PlannerConfig(mode="cost")
        )
        # Routes may differ (that is the point); answers may not.
        assert [r.answer for _, r in cost_planned] == [r.answer for _, r in reference]
        assert [str(q) for q, _ in cost_planned] == [str(q) for q, _ in reference]

    def test_service_plan_exposes_estimates(self, scenario):
        service = EvalService(scenario.database, planner=PlannerConfig(mode="cost"))
        plan = service.plan(scenario.queries[0])
        assert plan.mode == "cost"
        assert plan.estimates and plan.cost == min(plan.estimates.values())

    def test_statistics_reflect_query_vocabulary(self):
        scenario = scenario_by_name("grid_walks", count=3, seed=1)
        service = EvalService(scenario.database)
        stats = service.statistics(parse_query("E(x, y)"))
        assert stats.universe_size == 36
        assert stats.relation_sizes["E"] == 120
