"""Planner and dispatch provenance: every solver route is reachable,
reported degrees match the configured thresholds (including the exact
boundary cases), and the cost-based planner behaves sanely."""

import pytest

from repro.classification import (
    ComplexityDegree,
    PlannerConfig,
    StructureProfile,
    choose_degree,
    classify_structure,
    solve_hom,
    solve_with_degree,
)
from repro.eval import DatabaseStatistics, estimate_route_costs, plan_query
from repro.homomorphism import has_homomorphism
from repro.structures import clique, cycle, path
from repro.structures.builders import directed_path
from repro.structures.random_gen import random_graph_structure


def profile_with_widths(tw: int, pw: int, td: int) -> StructureProfile:
    """A synthetic profile carrying exactly the requested core widths."""
    structure = path(2)
    return StructureProfile(
        structure=structure,
        core=structure,
        core_treewidth=tw,
        core_pathwidth=pw,
        core_treedepth=td,
    )


class TestChooseDegreeBoundaries:
    """The default thresholds are tw>4 → W1, pw>3 → TREE, td>4 → PATH."""

    @pytest.mark.parametrize(
        "tw, pw, td, expected",
        [
            # exactly at each threshold: still the lighter degree
            (4, 3, 4, ComplexityDegree.PARA_L),
            (1, 1, 4, ComplexityDegree.PARA_L),
            # one past the treedepth threshold only
            (1, 1, 5, ComplexityDegree.PATH_COMPLETE),
            (4, 3, 5, ComplexityDegree.PATH_COMPLETE),
            # one past the pathwidth threshold (treedepth then irrelevant)
            (4, 4, 5, ComplexityDegree.TREE_COMPLETE),
            (1, 4, 99, ComplexityDegree.TREE_COMPLETE),
            # one past the treewidth threshold dominates everything
            (5, 4, 5, ComplexityDegree.W1_HARD),
            (5, 99, 99, ComplexityDegree.W1_HARD),
        ],
    )
    def test_default_threshold_boundaries(self, tw, pw, td, expected):
        assert choose_degree(profile_with_widths(tw, pw, td)) is expected

    def test_custom_thresholds_move_the_boundary(self):
        profile = profile_with_widths(3, 3, 4)
        strict = PlannerConfig(
            treewidth_threshold=2, pathwidth_threshold=2, treedepth_threshold=2
        )
        assert choose_degree(profile) is ComplexityDegree.PARA_L
        assert choose_degree(profile, strict) is ComplexityDegree.W1_HARD

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(mode="oracle")


class TestSolverProvenance:
    """Each SolveResult.solver is reachable on a real structure of known
    widths, and the string matches the reported degree."""

    SOLVER_BY_DEGREE = {
        ComplexityDegree.PARA_L: "treedepth-recursion (Lemma 3.3)",
        ComplexityDegree.PATH_COMPLETE: "semiring join engine, path sweep (Theorem 4.6)",
        ComplexityDegree.TREE_COMPLETE: "semiring join engine, tree-decomposition DP (Lemma 3.4)",
        ComplexityDegree.W1_HARD: "generic backtracking (W[1]-hard regime)",
    }

    # (pattern, expected degree, expected exact-or-heuristic core widths)
    CASES = [
        (path(4), ComplexityDegree.PARA_L, (1, 1, 2)),
        (directed_path(17), ComplexityDegree.PATH_COMPLETE, None),
        (clique(5), ComplexityDegree.TREE_COMPLETE, (4, 4, 5)),
        (clique(6), ComplexityDegree.W1_HARD, (5, 5, 6)),
    ]

    @pytest.mark.parametrize("pattern, degree, widths", CASES)
    def test_real_structures_reach_each_route(self, pattern, degree, widths):
        target = random_graph_structure(9, 0.6, seed=13)
        profile = classify_structure(pattern)
        if widths is not None:
            assert (
                profile.core_treewidth,
                profile.core_pathwidth,
                profile.core_treedepth,
            ) == widths
        result = solve_hom(pattern, target, profile=profile)
        assert result.degree is degree
        assert result.solver == self.SOLVER_BY_DEGREE[degree]
        assert result.answer == has_homomorphism(pattern, target)

    def test_all_four_solver_strings_distinct(self):
        assert len(set(self.SOLVER_BY_DEGREE.values())) == 4

    @pytest.mark.parametrize("degree", list(ComplexityDegree))
    def test_forced_route_keeps_answer_and_provenance(self, degree):
        # Every route is correct for every structure; forcing it must
        # change only the solver string, never the answer.
        pattern = cycle(5)
        target = random_graph_structure(8, 0.5, seed=3)
        profile = classify_structure(pattern)
        result = solve_with_degree(pattern, target, degree, profile)
        assert result.solver == self.SOLVER_BY_DEGREE[degree]
        assert result.degree is degree
        assert result.answer == has_homomorphism(pattern, target)


class TestCostPlanner:
    def test_threshold_mode_matches_choose_degree(self):
        target = random_graph_structure(10, 0.4, seed=5)
        stats = DatabaseStatistics.of(target)
        for pattern in (path(4), clique(5), clique(6), directed_path(17)):
            profile = classify_structure(pattern)
            plan = plan_query(profile, stats, PlannerConfig())
            assert plan.degree is choose_degree(profile)
            assert plan.mode == "threshold"
            # estimates are populated (advisory) when stats are available
            assert set(plan.estimates) == set(ComplexityDegree)

    def test_cost_mode_picks_a_cheapest_route(self):
        target = random_graph_structure(10, 0.4, seed=5)
        stats = DatabaseStatistics.of(target)
        config = PlannerConfig(mode="cost")
        profile = classify_structure(cycle(5))
        plan = plan_query(profile, stats, config)
        assert plan.mode == "cost"
        assert plan.cost == min(plan.estimates.values())

    def test_cost_mode_tracks_database_size(self):
        config = PlannerConfig(mode="cost")
        profile = classify_structure(path(4))
        small = DatabaseStatistics.of(random_graph_structure(5, 0.5, seed=1))
        large = DatabaseStatistics.of(random_graph_structure(40, 0.5, seed=1))
        cheap = estimate_route_costs(profile, small, config)
        costly = estimate_route_costs(profile, large, config)
        for degree in ComplexityDegree:
            assert costly[degree] > cheap[degree]

    def test_result_degree_is_the_route_but_classification_is_preserved(self):
        # A cost-mode plan may route a para-L query to backtracking; the
        # result's degree records that route, while .classification()
        # still reports the Theorem 3.1 degree from the core widths.
        pattern = path(4)
        target = random_graph_structure(6, 0.5, seed=9)
        profile = classify_structure(pattern)
        forced = solve_with_degree(pattern, target, ComplexityDegree.W1_HARD, profile)
        assert forced.degree is ComplexityDegree.W1_HARD
        assert forced.classification() is ComplexityDegree.PARA_L

    def test_cost_mode_without_stats_falls_back_to_thresholds(self):
        profile = classify_structure(clique(6))
        plan = plan_query(profile, None, PlannerConfig(mode="cost"))
        assert plan.degree is choose_degree(profile)
        assert plan.estimates == {}

    def test_plan_summary_mentions_route(self):
        stats = DatabaseStatistics.of(random_graph_structure(6, 0.5, seed=2))
        plan = plan_query(classify_structure(path(3)), stats)
        assert "route" in plan.summary()


class TestDatabaseStatistics:
    def test_fan_out_of_a_functional_relation_is_one(self):
        # A directed path: every vertex has exactly one out-neighbour.
        stats = DatabaseStatistics.of(directed_path(6))
        assert stats.fan_out["E"] == 1.0
        assert stats.universe_size == 6
        assert stats.relation_sizes["E"] == 5

    def test_fan_out_of_a_star_is_the_leaf_count(self):
        from repro.workloads import star_query

        pattern = star_query(7).canonical_structure()
        stats = DatabaseStatistics.of(pattern)
        assert stats.fan_out["E"] == 7.0
        assert stats.max_fan_out == 7.0

    def test_empty_relation_contributes_zero(self):
        from repro.structures import Structure, Vocabulary

        structure = Structure(Vocabulary({"E": 2}), [1, 2], {})
        stats = DatabaseStatistics.of(structure)
        assert stats.fan_out["E"] == 0.0
        assert stats.total_tuples == 0
        assert stats.max_fan_out == 1.0

    def test_empty_relations_do_not_deflate_mean_fan_out(self):
        # A sparse vocabulary: one populated table with fan-out 3, four
        # uninstantiated ones.  The mean must reflect the populated
        # relation only — averaging in the 0.0 entries used to report
        # 0.6 → floored to 1.0, hiding the real branching factor from
        # cost-mode planning.
        from repro.structures import Structure, Vocabulary

        vocabulary = Vocabulary({"E": 2, "L": 2, "R": 3, "C1": 1, "C2": 1})
        structure = Structure(
            vocabulary, [1, 2, 3, 4], {"E": [(1, 2), (1, 3), (1, 4)]}
        )
        stats = DatabaseStatistics.of(structure)
        assert stats.fan_out["E"] == 3.0
        assert stats.fan_out["L"] == 0.0
        assert stats.mean_fan_out == 3.0
        assert stats.max_fan_out == 3.0

    def test_all_relations_empty_mean_fan_out_floors_at_one(self):
        from repro.structures import Structure, Vocabulary

        structure = Structure(Vocabulary({"E": 2, "L": 2}), [1, 2], {})
        stats = DatabaseStatistics.of(structure)
        assert stats.mean_fan_out == 1.0


class TestPlanCache:
    def setup_method(self):
        from repro.eval import clear_plan_cache

        clear_plan_cache()

    def test_repeated_planning_hits_the_cache(self):
        from repro.eval import clear_plan_cache, plan_cache_info, plan_query_cached

        target = random_graph_structure(10, 0.4, seed=5)
        stats = DatabaseStatistics.of(target)
        profile = classify_structure(path(4))
        first = plan_query_cached(profile, stats, PlannerConfig(mode="cost"))
        second = plan_query_cached(profile, stats, PlannerConfig(mode="cost"))
        assert first is second
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        clear_plan_cache()
        assert plan_cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_equal_statistics_fingerprints_share_a_plan(self):
        from repro.eval import plan_query_cached

        # Two value-identical databases produce distinct stats objects but
        # the same fingerprint — the cache must not care about identity.
        stats_a = DatabaseStatistics.of(random_graph_structure(10, 0.4, seed=5))
        stats_b = DatabaseStatistics.of(random_graph_structure(10, 0.4, seed=5))
        assert stats_a is not stats_b
        assert stats_a.fingerprint() == stats_b.fingerprint()
        profile = classify_structure(cycle(5))
        config = PlannerConfig(mode="cost")
        assert plan_query_cached(profile, stats_a, config) is plan_query_cached(
            profile, stats_b, config
        )

    def test_different_statistics_produce_fresh_plans(self):
        from repro.eval import plan_cache_info, plan_query_cached

        profile = classify_structure(path(4))
        config = PlannerConfig(mode="cost")
        small = DatabaseStatistics.of(random_graph_structure(5, 0.5, seed=1))
        large = DatabaseStatistics.of(random_graph_structure(40, 0.5, seed=1))
        plan_small = plan_query_cached(profile, small, config)
        plan_large = plan_query_cached(profile, large, config)
        assert plan_small is not plan_large
        assert plan_cache_info()["misses"] == 2

    def test_different_configs_do_not_collide(self):
        from repro.eval import plan_query_cached

        stats = DatabaseStatistics.of(random_graph_structure(10, 0.4, seed=5))
        profile = classify_structure(clique(5))
        threshold_plan = plan_query_cached(profile, stats, PlannerConfig())
        cost_plan = plan_query_cached(profile, stats, PlannerConfig(mode="cost"))
        assert threshold_plan.mode == "threshold"
        assert cost_plan.mode == "cost"

    def test_cache_is_bounded(self):
        from repro.eval import plan_cache_info, plan_query_cached
        from repro.eval.planner import _PLAN_CACHE_LIMIT

        profile = classify_structure(path(3))
        for size in range(2, _PLAN_CACHE_LIMIT + 30):
            stats = DatabaseStatistics(
                universe_size=size, total_tuples=size, relation_sizes={"E": size},
                fan_out={"E": 1.0},
            )
            plan_query_cached(profile, stats, PlannerConfig(mode="cost"))
        assert plan_cache_info()["size"] <= _PLAN_CACHE_LIMIT

    def test_cached_plans_match_uncached(self):
        from repro.eval import plan_query_cached

        stats = DatabaseStatistics.of(random_graph_structure(12, 0.3, seed=8))
        for pattern in (path(4), cycle(5), clique(5)):
            profile = classify_structure(pattern)
            for config in (PlannerConfig(), PlannerConfig(mode="cost")):
                cached = plan_query_cached(profile, stats, config)
                direct = plan_query(profile, stats, config)
                assert cached.degree is direct.degree
                assert cached.estimates == direct.estimates


class TestCertificateAwarePlanning:
    """The cost model reads StructureProfile.core_certificate: symmetric
    certificates ("clique", "odd-cycle") discount the branching base;
    identity-only rigidity ("ac-rigid") and search-proven cores do not."""

    def _stats(self):
        return DatabaseStatistics(
            universe_size=50,
            total_tuples=400,
            relation_sizes={"E": 400},
            fan_out={"E": 8.0},
        )

    def _profile(self, certificate):
        structure = cycle(5)
        return StructureProfile(
            structure=structure,
            core=structure,
            core_treewidth=2,
            core_pathwidth=2,
            core_treedepth=3,
            core_certificate=certificate,
        )

    @pytest.mark.parametrize("certificate", ["clique", "odd-cycle"])
    def test_symmetric_certificates_lower_every_estimate(self, certificate):
        stats = self._stats()
        plain = estimate_route_costs(self._profile(None), stats)
        discounted = estimate_route_costs(self._profile(certificate), stats)
        for degree in plain:
            assert discounted[degree] < plain[degree]

    @pytest.mark.parametrize("certificate", [None, "ac-rigid", "singleton"])
    def test_rigid_and_searched_cores_keep_full_branching(self, certificate):
        stats = self._stats()
        baseline = estimate_route_costs(self._profile(None), stats)
        assert estimate_route_costs(self._profile(certificate), stats) == baseline

    def test_discount_of_one_disables_the_adjustment(self):
        stats = self._stats()
        config = PlannerConfig(symmetry_discount=1.0)
        assert estimate_route_costs(
            self._profile("clique"), stats, config
        ) == estimate_route_costs(self._profile(None), stats, config)

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(symmetry_discount=0.0)
        with pytest.raises(ValueError):
            PlannerConfig(symmetry_discount=1.5)

    def test_real_odd_cycle_profile_carries_the_discount(self):
        profile = classify_structure(cycle(7))
        assert profile.core_certificate == "odd-cycle"
        stats = self._stats()
        rigid = classify_structure(directed_path(8))
        assert rigid.core_certificate == "ac-rigid"
        from repro.eval import route_raw_units

        # Same branching statistic, but only the odd cycle sees it discounted.
        discounted = route_raw_units(profile, stats)[ComplexityDegree.W1_HARD]
        config_off = PlannerConfig(symmetry_discount=1.0)
        full = route_raw_units(profile, stats, config_off)[ComplexityDegree.W1_HARD]
        assert discounted < full

    def test_threshold_routing_unaffected_by_certificates(self):
        # The discount shapes estimates only; threshold mode still routes
        # by the width thresholds.
        stats = self._stats()
        plan_plain = plan_query(self._profile(None), stats)
        plan_cert = plan_query(self._profile("odd-cycle"), stats)
        assert plan_plain.degree is plan_cert.degree
