"""Deterministic fault injection for the query-service stack.

Injections exploit the ``fork`` start method: the parent patches
module-level state *before* the worker pool exists, and every forked
worker inherits the patch.  One-shot arming lives in a manager dict —
``pop`` on a manager proxy is atomic, so exactly one process consumes
the flag no matter how many race for it — which makes each fault fire
exactly once per test regardless of chunk scheduling.

Four injection surfaces:

* :func:`chunk_fault` wraps ``repro.eval.executor._evaluate_chunk`` so
  an ``action(flags, queries)`` hook runs at every chunk start inside
  the worker.  Stock actions: :func:`kill_worker` (``os._exit`` — the
  pool breaks mid-chunk) and :func:`wedge_worker` (sleep forever — the
  chunk deadline must catch it).
* :class:`FlakyMapping` wraps a shared control-plane mapping (the
  planner control slot, the heartbeat board) so exactly one access
  raises :class:`ConnectionError` — a stand-in for a manager timeout or
  dropped connection, which the guarded worker paths must swallow.
* :class:`FaultyData` wraps a store's *backing* mapping with scripted
  faults — the first N operations raise :class:`ConnectionError`
  (transient flake the fault policy must retry through), add latency
  (slow manager the deadline budget must bound), or **every** operation
  fails until :meth:`FaultyData.restore` (full outage: the breaker must
  open and the store must degrade to local mode).
* :func:`kill_manager` SIGKILLs the real manager process behind a
  :class:`~repro.service.store.StoreManager` — the hard fault the
  front-end's failover supervision must absorb.

The wrapper submitted to the pool must be picklable by reference, so it
is a module-level function reading module-level state (set under
:func:`chunk_fault`); nested closures would not unpickle in workers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Tuple

import repro.eval.executor as executor_mod
from repro.classification.degrees import ComplexityDegree
from repro.service.telemetry import SolveSample

_ORIGINAL_EVALUATE_CHUNK = executor_mod._evaluate_chunk

#: ``(action, flags)`` while a :func:`chunk_fault` context is active.
_ACTIVE: Optional[Tuple[Callable[..., None], Any]] = None


def should_fire(flags: Any) -> bool:
    """Atomically consume the one-shot arming flag.

    ``pop`` on a manager dict is a single server-side operation, so
    only one caller ever observes the armed flag — the fault fires
    exactly once across all workers.
    """
    if not flags.get("armed"):
        return False
    return flags.pop("armed", None) is not None


def kill_worker(flags: Any, queries: Any) -> None:
    """Die abruptly mid-chunk — no cleanup, no exception, exit code 42.

    The parent sees a ``BrokenProcessPool`` and must recycle the pool
    and re-dispatch every unfinished chunk.
    """
    if should_fire(flags):
        os._exit(42)


def wedge_worker(flags: Any, queries: Any) -> None:
    """Hang forever mid-chunk (a stuck syscall / runaway solve stand-in).

    Only the executor's per-chunk deadline can detect this — the pool
    itself never notices a sleeping worker.
    """
    if should_fire(flags):
        while True:  # pragma: no cover — the worker is terminated externally
            time.sleep(3600)


def kill_manager_action(flags: Any, queries: Any) -> None:
    """SIGKILL the store-manager pid armed under ``flags["manager_pid"]``.

    A :func:`chunk_fault` action: fired from inside a worker at chunk
    start, it kills the *manager* (not the worker) mid-batch — the rest
    of the chunk must ride out dead proxies via the stores' degraded
    local mode, and the next batch boundary must fail over.
    """
    if should_fire(flags):
        os.kill(flags["manager_pid"], signal.SIGKILL)


def _faulty_evaluate_chunk(queries, deadline=None):  # noqa: ANN001 — must match the original
    """Module-level (hence picklable-by-reference) chunk wrapper."""
    if _ACTIVE is not None:
        action, flags = _ACTIVE
        action(flags, queries)
    return _ORIGINAL_EVALUATE_CHUNK(queries, deadline)


@contextmanager
def chunk_fault(action: Callable[..., None]) -> Iterator[Any]:
    """Arm ``action`` to run at every chunk start inside pool workers.

    Must be entered *before* the pool is created (i.e. before the first
    parallel batch) — workers fork with the patched module state, and a
    pool forked earlier would run the unpatched original forever.
    Yields the shared one-shot ``flags`` dict.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("chunk_fault contexts do not nest")
    manager = multiprocessing.Manager()
    flags = manager.dict()
    flags["armed"] = True
    _ACTIVE = (action, flags)
    executor_mod._evaluate_chunk = _faulty_evaluate_chunk
    try:
        yield flags
    finally:
        executor_mod._evaluate_chunk = _ORIGINAL_EVALUATE_CHUNK
        _ACTIVE = None
        manager.shutdown()


class FlakyMapping:
    """Wraps a shared mapping so exactly one access raises ConnectionError.

    Both the read path (``get`` — the planner sync) and the write path
    (``__setitem__`` — the heartbeat stamp) can fire; whichever access
    wins the one-shot flag raises, every later access passes through.
    Picklable (module-level class, proxy-backed state), so it survives
    the pool-initializer round trip into workers.
    """

    def __init__(self, inner: Any, flags: Any) -> None:
        self._inner = inner
        self._flags = flags

    def _maybe_fail(self) -> None:
        if should_fire(self._flags):
            raise ConnectionError("injected manager-store timeout")

    def get(self, key: Any, default: Any = None) -> Any:
        self._maybe_fail()
        return self._inner.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        self._maybe_fail()
        return self._inner[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._maybe_fail()
        self._inner[key] = value

    def __delitem__(self, key: Any) -> None:
        del self._inner[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._inner

    def __iter__(self):
        return iter(self._inner.keys())

    def __len__(self) -> int:
        return len(self._inner)

    def keys(self):
        return self._inner.keys()

    def items(self):
        return self._inner.items()


class FaultyData:
    """A scripted-fault wrapper around a store's backing mapping.

    Swapped in for ``SharedStore._data`` (and optionally ``_counters``)
    inside one process, it implements exactly the mapping surface the
    store's ``*_raw`` closures exercise.  Fault script, applied on every
    operation in order:

    1. while ``latency_ops`` remain, sleep ``latency_seconds`` first
       (slow-manager injection — the deadline budget must bound it);
    2. while ``failures`` remain, raise :class:`ConnectionError`
       (transient flake — the fault policy must retry through it).

    :meth:`down` makes the failure budget infinite (hard outage: the
    breaker must open and the store must answer from degraded local
    mode); :meth:`restore` zeroes it (recovery: the breaker's probe
    must close it again and queued entries must reconcile).
    ``faults_fired`` counts injected errors, ``ops`` all operations.
    """

    def __init__(
        self,
        inner: Any,
        failures: float = 0,
        latency_seconds: float = 0.0,
        latency_ops: int = 0,
    ) -> None:
        self.inner = inner
        self.failures = failures
        self.latency_seconds = latency_seconds
        self.latency_ops = latency_ops
        self.ops = 0
        self.faults_fired = 0

    def down(self) -> None:
        self.failures = float("inf")

    def restore(self) -> None:
        self.failures = 0

    def _gate(self) -> None:
        self.ops += 1
        if self.latency_ops > 0 and self.latency_seconds > 0:
            self.latency_ops -= 1
            time.sleep(self.latency_seconds)
        if self.failures > 0:
            self.failures -= 1
            self.faults_fired += 1
            raise ConnectionError("injected store fault")

    # -- the mapping surface SharedStore's *_raw closures use ---------------
    def get(self, key: Any, default: Any = None) -> Any:
        self._gate()
        return self.inner.get(key, default)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._gate()
        return self.inner.setdefault(key, default)

    def pop(self, key: Any, *default: Any) -> Any:
        self._gate()
        return self.inner.pop(key, *default)

    def items(self):
        self._gate()
        return self.inner.items()

    def keys(self):
        self._gate()
        return self.inner.keys()

    def values(self):
        self._gate()
        return self.inner.values()

    def __getitem__(self, key: Any) -> Any:
        self._gate()
        return self.inner[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._gate()
        self.inner[key] = value

    def __delitem__(self, key: Any) -> None:
        self._gate()
        del self.inner[key]

    def __contains__(self, key: Any) -> bool:
        self._gate()
        return key in self.inner

    def __len__(self) -> int:
        self._gate()
        return len(self.inner)

    def __iter__(self):
        return iter(self.inner)


def kill_manager(store_manager: Any, timeout: float = 10.0) -> int:
    """SIGKILL the backing manager process and wait until it is dead.

    Returns the killed pid.  The caller owns recovery — typically the
    front-end's per-batch :meth:`QueryService.check_store_health`, or a
    direct :meth:`StoreManager.failover`.
    """
    pid = store_manager.manager_pid()
    if pid is None:
        raise RuntimeError("local stores have no manager process to kill")
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + timeout
    while store_manager.manager_alive():
        if time.monotonic() >= deadline:  # pragma: no cover — kill is immediate
            raise RuntimeError(f"manager pid {pid} survived SIGKILL")
        time.sleep(0.01)
    return pid


def flood_telemetry(sink: Any, batches: int = 1200, per_batch: int = 3) -> int:
    """Record far more sample batches than the sink retains.

    Exercises the bounded sink's oldest-batch dropping and, downstream,
    the front-end's consumed-offset clamp.  Returns the number of
    samples recorded.
    """
    route = next(iter(ComplexityDegree)).value
    sample = SolveSample(
        route=route,
        raw_units=1.0,
        seconds=0.001,
        core_size=2,
        universe_size=10,
        branching=1.5,
    )
    for _ in range(batches):
        sink.record([sample] * per_batch)
    return batches * per_batch
